"""The analysis engine: findings, the rule registry, suppressions, and
baselines.

The engine is deliberately small.  A :class:`SourceFile` is one parsed
Python file (text, AST, suppression table); a :class:`Project` is the
set of files under analysis plus their dotted-module index; a
:class:`Rule` inspects either one file at a time (``scope = "file"``)
or the whole project (``scope = "project"``, used by the TCB audit,
which needs the import graph).

Suppressions use the ``# repro: noqa[RULE-ID]`` comment syntax:

* trailing a line of code, it suppresses the named rules on that line;
* on a line of its own, it suppresses the named rules for the whole
  file;
* ``# repro: noqa`` with no bracket suppresses every rule.

Baselines grandfather pre-existing findings: a committed JSON file maps
``(rule, path, message)`` triples (line numbers are deliberately
excluded so unrelated edits do not churn the file) to counts; findings
covered by the baseline are reported separately and do not fail the
run.
"""

from __future__ import annotations

import ast
import io
import json
import re
import time
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

#: Matches ``# repro: noqa`` and ``# repro: noqa[DET001,SEC001]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s-]+)\])?")

#: Findings at or above this severity fail the run.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative POSIX path
    line: int
    message: str
    severity: str = "error"

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across unrelated line drift."""
        return (self.rule, self.path, self.message)

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }


class Rule:
    """Base class for analysis rules.

    Subclasses set :attr:`id`, :attr:`title` and :attr:`severity`, write
    their rationale in the class docstring (shown by ``--explain``), and
    implement :meth:`check_file` or — for whole-program rules —
    :meth:`check_project`.
    """

    id: str = ""
    title: str = ""
    severity: str = "error"
    scope: str = "file"

    def explain(self) -> str:
        """The rule's rationale and how to fix or suppress findings."""
        doc = (type(self).__doc__ or "").strip()
        return f"{self.id}: {self.title}\n\n{doc}"

    def check_file(self, source: "SourceFile") -> Iterable[Finding]:
        return ()

    def check_project(self, project: "Project") -> Iterable[Finding]:
        for source in project.files:
            yield from self.check_file(source)

    def finding(self, source: "SourceFile", line: int, message: str) -> Finding:
        return Finding(self.id, source.relpath, line, message, self.severity)


#: Registry of every rule, id → instance, in registration order.
_RULES: Dict[str, Rule] = {}


def register(rule_cls):
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id for deterministic output."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Optional[Rule]:
    return _RULES.get(rule_id)


# -- source files and projects -------------------------------------------------


@dataclass(frozen=True)
class SuppressionRecord:
    """One ``# repro: noqa`` marker, as written in the source."""

    line: int
    ids: frozenset
    #: True for a standalone comment line (file-wide suppression).
    standalone: bool


@dataclass
class SourceFile:
    """One parsed Python source file."""

    relpath: str
    module: str
    text: str
    tree: ast.AST
    #: Rule ids suppressed for the whole file ("*" = all rules).
    file_suppressions: frozenset = frozenset()
    #: line number → suppressed rule ids ("*" = all rules).
    line_suppressions: Dict[int, frozenset] = field(default_factory=dict)
    #: Every suppression marker, in source order (SUP001 audits these).
    suppression_records: List[SuppressionRecord] = field(default_factory=list)

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()

    def suppressed(self, rule_id: str, line: int) -> bool:
        for ids in (self.file_suppressions, self.line_suppressions.get(line, frozenset())):
            if "*" in ids or rule_id in ids:
                return True
        return False


def _parse_suppressions(
    text: str,
) -> Tuple[frozenset, Dict[int, frozenset], List[SuppressionRecord]]:
    """Suppressions from *comment tokens only*.

    Tokenizing (rather than regex-scanning raw lines) means a noqa
    marker quoted inside a triple-quoted string is just data, and a
    single comment stacking several markers
    (``# repro: noqa[A] # repro: noqa[B]``) applies all of them.
    """
    file_ids: set = set()
    line_ids: Dict[int, set] = {}
    records: List[SuppressionRecord] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        tokens = []  # ast.parse already vouched for the file; be lenient
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        lineno = token.start[0]
        standalone = token.line[: token.start[1]].strip() == ""
        for match in _NOQA_RE.finditer(token.string):
            ids = (
                frozenset(p.strip() for p in match.group(1).split(",") if p.strip())
                if match.group(1)
                else frozenset(["*"])
            )
            records.append(SuppressionRecord(lineno, ids, standalone))
            if standalone:
                file_ids.update(ids)
            else:
                line_ids.setdefault(lineno, set()).update(ids)
    return (
        frozenset(file_ids),
        {k: frozenset(v) for k, v in line_ids.items()},
        records,
    )


def parse_source(text: str, relpath: str, module: str) -> SourceFile:
    """Parse one file's text into a :class:`SourceFile`."""
    tree = ast.parse(text, filename=relpath)
    file_ids, line_ids, records = _parse_suppressions(text)
    return SourceFile(
        relpath=relpath,
        module=module,
        text=text,
        tree=tree,
        file_suppressions=file_ids,
        line_suppressions=line_ids,
        suppression_records=records,
    )


@dataclass
class Project:
    """Every file under analysis, with a dotted-module index."""

    root: Path
    files: List[SourceFile]

    def __post_init__(self) -> None:
        self.by_module: Dict[str, SourceFile] = {
            f.module: f for f in self.files if f.module
        }

    def module_exists(self, module: str) -> bool:
        return module in self.by_module


def _module_name(root: Path, path: Path) -> str:
    """Dotted module name for ``src/repro/...`` layouts; "" otherwise."""
    rel = path.relative_to(root)
    parts = list(rel.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts or not parts[-1].endswith(".py"):
        return ""
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def load_project(root: Path, paths: Iterable[str] = ("src/repro",)) -> Project:
    """Load every ``*.py`` file under ``paths`` (relative to ``root``)."""
    root = Path(root).resolve()
    files: List[SourceFile] = []
    seen = set()
    for entry in paths:
        base = (root / entry).resolve()
        candidates = sorted(base.rglob("*.py")) if base.is_dir() else [base]
        for path in candidates:
            if path in seen or "__pycache__" in path.parts:
                continue
            seen.add(path)
            relpath = path.relative_to(root).as_posix()
            text = path.read_text(encoding="utf-8")
            files.append(parse_source(text, relpath, _module_name(root, path)))
    files.sort(key=lambda f: f.relpath)
    return Project(root=root, files=files)


# -- running rules -------------------------------------------------------------


def _wall_seconds() -> float:
    """Wall time for rule profiling (``meta.rule_timings`` and
    ``--profile``) — never byte-compared, unlike everything else."""
    return time.perf_counter()  # repro: noqa[DET001]


def run_rules_timed(
    project: Project, rules: Optional[Iterable[Rule]] = None
) -> Tuple[List[Finding], Dict[str, Dict[str, float]]]:
    """Like :func:`run_rules`, also returning per-rule stats.

    The stats map ``rule id -> {"wall_ms": ..., "findings": ...}`` where
    ``findings`` counts the rule's *kept* findings (after suppressions).
    """
    findings: List[Finding] = []
    stats: Dict[str, Dict[str, float]] = {}
    for rule in rules if rules is not None else all_rules():
        started = _wall_seconds()
        produced = list(rule.check_project(project))
        stats[rule.id] = {
            "wall_ms": (_wall_seconds() - started) * 1000.0,
            "findings": 0,
        }
        findings.extend(produced)
    kept = []
    for finding in findings:
        source = next((f for f in project.files if f.relpath == finding.path), None)
        if source is not None and source.suppressed(finding.rule, finding.line):
            continue
        kept.append(finding)
    result = sorted(set(kept), key=Finding.sort_key)
    for finding in result:
        if finding.rule in stats:
            stats[finding.rule]["findings"] += 1
    return result, stats


def run_rules(project: Project, rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Run rules over the project; suppressions applied, output sorted."""
    findings, _ = run_rules_timed(project, rules)
    return findings


def analyze_source(
    text: str,
    module: str = "repro.example",
    relpath: str = "example.py",
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Analyze one source snippet (docs and rule unit tests use this)."""
    project = Project(root=Path("."), files=[parse_source(text, relpath, module)])
    if rules is None:
        rules = [rule for rule in all_rules() if rule.scope == "file"]
    return run_rules(project, rules)


# -- baselines -----------------------------------------------------------------

BASELINE_FORMAT = "repro-analysis-baseline"
BASELINE_VERSION = 1


def load_baseline(path: Path) -> Counter:
    """Load a baseline file into a ``(rule, path, message) -> count`` map."""
    if not Path(path).exists():
        return Counter()
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("format") != BASELINE_FORMAT:
        raise ValueError(f"{path}: not a {BASELINE_FORMAT} file")
    counter: Counter = Counter()
    for entry in doc.get("findings", ()):
        key = (entry["rule"], entry["path"], entry["message"])
        counter[key] += int(entry.get("count", 1))
    return counter


def render_baseline(findings: Iterable[Finding]) -> str:
    """Canonical baseline JSON for the given findings (byte-stable)."""
    counter = Counter(f.key() for f in findings)
    entries = [
        {"rule": rule, "path": path, "message": message, "count": count}
        for (rule, path, message), count in sorted(counter.items())
    ]
    doc = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "findings": entries,
    }
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


# -- suppression hygiene -------------------------------------------------------


@register
class UnknownSuppressionRule(Rule):
    """Every ``# repro: noqa[RULE-ID]`` must name a registered rule.

    A suppression naming a rule that does not exist silences nothing —
    it is almost always a typo (``SEC01`` for ``SEC001``) or a leftover
    from a rule that was renamed, and the author believes a finding is
    suppressed when it is not (or worse: the typo'd suppression was
    *meant* to hide a real finding that is now invisible in review).

    Fix the id, or delete the stale marker.  ``# repro: noqa`` with no
    bracket (suppress everything) is exempt — it names no rule.
    """

    id = "SUP001"
    title = "suppression names an unknown rule id"
    severity = "error"

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        for record in source.suppression_records:
            for rule_id in sorted(record.ids):
                if rule_id != "*" and rule_id not in _RULES:
                    yield self.finding(
                        source, record.line,
                        f"suppression names unknown rule '{rule_id}' "
                        "(see --list-rules); fix or remove it",
                    )


def split_baselined(
    findings: Iterable[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, grandfathered-by-baseline)."""
    budget = Counter(baseline)
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        if budget[finding.key()] > 0:
            budget[finding.key()] -= 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old
