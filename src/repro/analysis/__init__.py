"""Static analysis for the repo's two load-bearing invariants.

Flicker's claim is a *measured, minimal* TCB; this reproduction's own
claim is byte-identical determinism (fault campaigns, fleet reports and
bench baselines are all compared byte-for-byte).  Neither survives by
accident, so this package checks both from the source text itself:

* :mod:`repro.analysis.tcb` — builds the import graph rooted at the PAL
  runtime (``core/pal.py``, ``core/slb_core.py``, ``core/modules/*``),
  enforces the allowlisted TCB closure, and emits the per-PAL TCB report
  (``ANALYSIS_tcb.json``, the repro analogue of the paper's Figure 6
  TCB-size table).
* :mod:`repro.analysis.determinism` — forbids wall-clock and ambient
  entropy, unordered-set iteration feeding exporters, and ``id()``-based
  sort keys.
* :mod:`repro.analysis.secret_flow` — tracks values from Unseal /
  GetRandom / key-generation call sites into logs, trace events,
  exception messages and exporter payloads.
* :mod:`repro.analysis.callgraph` — resolves every call site to its
  definition(s) (imports, class attribution, name-suffix matching) and
  pins the summary in ``ANALYSIS_callgraph.json``; the three
  interprocedural families build on it:
  :mod:`repro.analysis.interproc` (SEC002 cross-function secret flow),
  :mod:`repro.analysis.isolation` (ISO001/ISO002 tenant isolation),
  and :mod:`repro.analysis.races` (RACE001 scheduler-sharing lint).

Drive it with ``python -m repro.tools.lint``; see ``docs/ANALYSIS.md``.

Example
-------
>>> from repro.analysis import analyze_source
>>> findings = analyze_source(
...     "import time\\n"
...     "def stamp(report):\\n"
...     "    report['at'] = time.time()\\n",
...     module="repro.sim.example",
... )
>>> [(f.rule, f.line) for f in findings]
[('DET001', 3)]
"""

from repro.analysis.engine import (
    Finding,
    Project,
    Rule,
    all_rules,
    analyze_source,
    get_rule,
    load_baseline,
    load_project,
    render_baseline,
    run_rules,
    split_baselined,
)
from repro.analysis.engine import run_rules_timed
from repro.analysis import (  # noqa: F401  (register rules)
    callgraph,
    determinism,
    interproc,
    isolation,
    races,
    secret_flow,
    tcb,
)
from repro.analysis.callgraph import generate_callgraph_report, get_callgraph
from repro.analysis.tcb import generate_tcb_report

__all__ = [
    "Finding",
    "Project",
    "Rule",
    "all_rules",
    "analyze_source",
    "generate_callgraph_report",
    "generate_tcb_report",
    "get_callgraph",
    "get_rule",
    "load_baseline",
    "load_project",
    "render_baseline",
    "run_rules",
    "run_rules_timed",
    "split_baselined",
]
