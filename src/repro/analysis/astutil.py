"""Small AST helpers shared by the rule families."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; ``None`` for anything else.

    ``sorted(x)`` → ``"sorted"``; ``time.time`` → ``"time.time"``;
    ``self.clock.span`` → ``"self.clock.span"``.  Chains rooted in calls
    or subscripts resolve to ``None`` — the rules treat those as opaque.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.AST) -> Optional[str]:
    """The dotted name of a call's callee, or ``None``."""
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return None


def count_loc(text: str) -> int:
    """Lines of code: non-blank lines that are not pure comments.

    Deliberately simple and deterministic — the TCB report compares
    sizes against the paper's Figure 6, where exact counting rules
    matter less than stability.
    """
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


@dataclass(frozen=True)
class ImportEdge:
    """One import statement: the importing module depends on ``target``."""

    target: str
    line: int
    #: True when the import only executes under ``if TYPE_CHECKING:`` —
    #: annotation-only, so not part of the runtime TCB.
    type_checking: bool


def _is_type_checking_test(test: ast.AST) -> bool:
    return dotted_name(test) in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


def resolve_relative(
    module: str, level: int, base: str, is_package: bool = False
) -> str:
    """Absolute dotted target of a ``from ...base import x`` statement.

    ``module`` is the importing module; pass ``is_package=True`` for a
    package ``__init__`` (whose single leading dot names the package
    itself rather than its parent).
    """
    parts = module.split(".") if module else []
    keep = len(parts) - level + (1 if is_package else 0)
    parent = ".".join(parts[: max(keep, 0)])
    if base and parent:
        return f"{parent}.{base}"
    return base or parent


def iter_imports(
    tree: ast.AST, module: str = "", is_package: bool = False
) -> Iterator[ImportEdge]:
    """Every import in ``tree``, including function-local ones.

    ``from pkg import name`` yields ``pkg.name`` *and* ``pkg`` — the
    caller resolves which of the two an edge should target (only one
    will exist as a module).  Relative imports are resolved against
    ``module`` (pass ``is_package=True`` for ``__init__`` modules);
    imports under ``if TYPE_CHECKING:`` are marked.
    """

    def visit(node: ast.AST, type_checking: bool) -> Iterator[ImportEdge]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield ImportEdge(alias.name, node.lineno, type_checking)
            return
        if isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                base = resolve_relative(module, node.level, base, is_package)
            if base:
                yield ImportEdge(base, node.lineno, type_checking)
                for alias in node.names:
                    if alias.name != "*":
                        yield ImportEdge(
                            f"{base}.{alias.name}", node.lineno, type_checking
                        )
            return
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for child in node.body:
                yield from visit(child, True)
            for child in node.orelse:
                yield from visit(child, type_checking)
            return
        for child in ast.iter_child_nodes(node):
            yield from visit(child, type_checking)

    yield from visit(tree, False)
