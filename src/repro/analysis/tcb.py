"""TCB audit: the import-graph closure of the PAL runtime, enforced.

The paper's core argument is quantitative: Figure 6 counts the lines of
code a PAL must trust, and the whole design exists to keep that count
small.  This module is the reproduction's enforcement of the same
property.  It roots an import graph at the PAL runtime —
``repro.core.pal``, ``repro.core.slb_core`` and every linkable module
under ``repro.core.modules`` — computes the transitive closure, and
checks every repo-internal module it reaches against an allowlist.

Reaching :mod:`repro.osim` (the untrusted-OS simulation),
:mod:`repro.obs`, :mod:`repro.faults`, :mod:`repro.tools`,
:mod:`repro.apps`, :mod:`repro.bench`, :mod:`repro.dist` or
:mod:`repro.analysis` from PAL code is an error (TCB001): those subsystems are by definition outside
the TCB, and an import from inside it would silently grow every PAL's
trusted base.  ``if TYPE_CHECKING:`` imports are exempt — they never
execute at run time.

The audit also emits the repro analogue of the paper's TCB-size table:
``ANALYSIS_tcb.json`` lists the audited closure (module → LoC) and, for
every PAL subclass in the tree, its linked registry modules with the
paper's Figure 6 LoC numbers, its own LoC, and the transitive Python
module set backing it.  The committed report must match the source
(TCB002), so any PR that grows the TCB has to update the report — and
the reviewer sees the growth in the diff.
"""

from __future__ import annotations

import ast
import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.astutil import ImportEdge, count_loc, dotted_name, iter_imports
from repro.analysis.engine import Finding, Project, Rule, SourceFile, register

#: Report file name (committed at the repo root) and format tag.
TCB_REPORT_NAME = "ANALYSIS_tcb.json"
TCB_REPORT_FORMAT = "repro-analysis-tcb"
TCB_REPORT_VERSION = 1

#: The import-graph roots: the code every Flicker session runs measured.
TCB_ROOTS = (
    "repro.core.pal",
    "repro.core.slb_core",
    "repro.core.modules",
)

#: Repo-internal prefixes the TCB closure may touch.
TCB_ALLOWED_PREFIXES = (
    "repro.core",
    "repro.crypto",
    "repro.errors",
    "repro.hw",
    "repro.sim",
    "repro.tpm",
)

#: Repo-internal prefixes that are *never* TCB, allowlist or not.
TCB_FORBIDDEN_PREFIXES = (
    "repro.analysis",
    "repro.apps",
    "repro.bench",
    "repro.dist",
    "repro.faults",
    "repro.fuzz",
    "repro.obs",
    "repro.osim",
    "repro.tools",
    "repro.vtpm",
)


def _matches_prefix(module: str, prefixes: Iterable[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _resolve_target(project: Project, target: str) -> Optional[str]:
    """Map an import target onto a project module, if it names one.

    ``from repro.core import slb`` yields both ``repro.core`` and
    ``repro.core.slb``; only names that actually exist as modules become
    graph edges, so imported *symbols* never masquerade as modules.
    """
    if project.module_exists(target):
        return target
    return None


def import_graph(project: Project) -> Dict[str, List[ImportEdge]]:
    """module → runtime import edges (targets resolved, TYPE_CHECKING
    imports dropped)."""
    graph: Dict[str, List[ImportEdge]] = {}
    for source in project.files:
        if not source.module:
            continue
        edges: List[ImportEdge] = []
        seen = set()
        for edge in iter_imports(source.tree, source.module,
                                 is_package=source.relpath.endswith("__init__.py")):
            if edge.type_checking:
                continue
            resolved = _resolve_target(project, edge.target)
            if resolved is None or resolved == source.module:
                continue
            key = (resolved, edge.line)
            if key not in seen:
                seen.add(key)
                edges.append(ImportEdge(resolved, edge.line, False))
        graph[source.module] = edges
    return graph


def expand_roots(project: Project, roots: Iterable[str] = TCB_ROOTS) -> List[str]:
    """Roots with package names expanded to their present submodules."""
    expanded = set()
    for root in roots:
        for module in project.by_module:
            if module == root or module.startswith(root + "."):
                expanded.add(module)
    return sorted(expanded)


def tcb_closure(
    project: Project, roots: Iterable[str] = TCB_ROOTS
) -> Tuple[List[str], Dict[str, List[ImportEdge]]]:
    """The transitive import closure from ``roots``; returns the sorted
    closure and the import graph it was computed over."""
    graph = import_graph(project)
    closure = set()
    frontier = list(expand_roots(project, roots))
    while frontier:
        module = frontier.pop()
        if module in closure:
            continue
        closure.add(module)
        for edge in graph.get(module, ()):
            if edge.target not in closure:
                frontier.append(edge.target)
    return sorted(closure), graph


@register
class TCBForbiddenImportRule(Rule):
    """PAL-runtime code must stay inside the allowlisted TCB closure.

    The import graph rooted at ``repro.core.pal``, ``repro.core.slb_core``
    and ``repro.core.modules.*`` may only reach modules under
    ``repro.core``, ``repro.crypto``, ``repro.errors``, ``repro.hw``,
    ``repro.sim`` and ``repro.tpm``.  Reaching ``repro.osim``,
    ``repro.obs``, ``repro.faults``, ``repro.tools``, ``repro.apps``,
    ``repro.bench``, ``repro.dist`` or ``repro.analysis`` means
    untrusted or tooling code was pulled into every PAL's trusted base.

    Fix it by moving the shared functionality into an allowlisted
    package (as ``repro.tpm.driver`` does for the TPM session plumbing)
    or gating the import under ``if TYPE_CHECKING:`` when it is
    annotation-only.  Stdlib imports are not audited.
    """

    id = "TCB001"
    title = "PAL TCB reaches a forbidden module"
    severity = "error"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        closure, graph = tcb_closure(project)
        for module in closure:
            source = project.by_module.get(module)
            if source is None:
                continue
            # Only the boundary crossing is the defect: a forbidden module
            # already in the closure was reported at its import site, and
            # its own imports are not separately actionable.
            if _matches_prefix(module, TCB_FORBIDDEN_PREFIXES):
                continue
            for edge in graph.get(module, ()):
                bad = _matches_prefix(edge.target, TCB_FORBIDDEN_PREFIXES) or (
                    edge.target.startswith("repro.")
                    and not _matches_prefix(edge.target, TCB_ALLOWED_PREFIXES)
                )
                if bad:
                    yield self.finding(
                        source,
                        edge.line,
                        f"TCB module '{module}' imports forbidden module "
                        f"'{edge.target}'",
                    )


# -- the TCB report ------------------------------------------------------------


def _literal_str_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        values = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                values.append(element.value)
            else:
                return None
        return tuple(values)
    return None


def _class_segment_loc(source: SourceFile, node: ast.ClassDef) -> int:
    lines = source.text.splitlines()[node.lineno - 1: node.end_lineno]
    return count_loc("\n".join(lines))


def find_pals(project: Project) -> List[Dict[str, object]]:
    """Every ``PAL`` subclass in the project, statically extracted.

    Reads the class-level ``name`` and ``modules`` literals the PAL
    programming model requires, and measures the class body's LoC — the
    code SKINIT would measure.
    """
    pals: List[Dict[str, object]] = []
    for source in project.files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {dotted_name(base) for base in node.bases}
            if not bases & {"PAL", "pal.PAL", "core.PAL", "repro.core.PAL"}:
                continue
            pal_name = node.name
            linked: Tuple[str, ...] = ()
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    targets = [dotted_name(t) for t in statement.targets]
                elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
                    targets = [dotted_name(statement.target)]
                else:
                    continue
                if "name" in targets and isinstance(statement.value, ast.Constant):
                    if isinstance(statement.value.value, str):
                        pal_name = statement.value.value
                if "modules" in targets:
                    literal = _literal_str_tuple(statement.value)
                    if literal is not None:
                        linked = literal
            pals.append({
                "class": node.name,
                "module": source.module,
                "path": source.relpath,
                "name": pal_name,
                "declared_modules": linked,
                "pal_loc": _class_segment_loc(source, node),
            })
    return sorted(pals, key=lambda p: (str(p["module"]), str(p["class"])))


#: Which Python source modules implement each registry (Figure 6) module.
REGISTRY_BACKING = {
    "slb_core": ("repro.core.slb_core",),
    "os_protection": ("repro.core.modules.os_protection",),
    "tpm_driver": ("repro.core.modules.tpm_utils", "repro.tpm.driver"),
    "tpm_utils": ("repro.core.modules.tpm_utils", "repro.tpm.driver"),
    "crypto": ("repro.core.modules.crypto_mod",),
    "crypto_sha1": ("repro.core.modules.crypto_mod",),
    "memory_mgmt": ("repro.core.modules.memory_mgmt",),
    "secure_channel": ("repro.core.modules.secure_channel",),
}


def generate_tcb_report(project: Project) -> str:
    """The canonical TCB report: byte-identical for identical sources."""
    from repro.core.modules import MODULE_REGISTRY, resolve_modules

    closure, graph = tcb_closure(project)
    closure_loc = {
        module: count_loc(project.by_module[module].text)
        for module in closure
        if module in project.by_module
    }

    pal_entries: Dict[str, Dict[str, object]] = {}
    for pal in find_pals(project):
        declared = tuple(pal["declared_modules"])  # type: ignore[arg-type]
        resolved = resolve_modules(declared)
        registry_loc = {
            name: MODULE_REGISTRY[name].lines_of_code
            for name in resolved
            if name in MODULE_REGISTRY
        }
        backing = set()
        for name in resolved:
            backing.update(REGISTRY_BACKING.get(name, ()))
        tcb_modules = sorted(
            set(closure_loc) | {m for m in backing if m in project.by_module}
        )
        tcb_loc = sum(
            closure_loc.get(m, count_loc(project.by_module[m].text))
            for m in tcb_modules
        )
        key = f"{pal['module']}.{pal['class']}"
        pal_entries[key] = {
            "name": pal["name"],
            "path": pal["path"],
            "pal_loc": pal["pal_loc"],
            "linked_modules": list(resolved),
            "figure6_loc": registry_loc,
            "figure6_total_loc": sum(registry_loc.values()),
            "tcb_modules": tcb_modules,
            "tcb_python_loc": tcb_loc,
            "total_loc": pal["pal_loc"] + sum(registry_loc.values()),
        }

    doc = {
        "format": TCB_REPORT_FORMAT,
        "version": TCB_REPORT_VERSION,
        "roots": list(expand_roots(project)),
        "allowed_prefixes": list(TCB_ALLOWED_PREFIXES),
        "forbidden_prefixes": list(TCB_FORBIDDEN_PREFIXES),
        "closure": closure_loc,
        "closure_total_loc": sum(closure_loc.values()),
        "pals": pal_entries,
    }
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


@register
class TCBReportStaleRule(Rule):
    """The committed ``ANALYSIS_tcb.json`` must match the source tree.

    The report is the repro analogue of the paper's Figure 6 TCB-size
    table: the audited import closure with LoC, and every PAL's linked
    modules and sizes.  It is generated deterministically from the
    source, so a mismatch means the TCB changed without the report —
    regenerate it with ``python -m repro.tools.lint --update-tcb-report``
    and let the diff show the growth.
    """

    id = "TCB002"
    title = "committed TCB report is stale"
    severity = "error"
    scope = "project"

    def check_project(self, project: Project) -> Iterable[Finding]:
        report_path = project.root / TCB_REPORT_NAME
        expected = generate_tcb_report(project)
        if not report_path.exists():
            yield Finding(
                self.id, TCB_REPORT_NAME, 1,
                f"{TCB_REPORT_NAME} is missing; regenerate it with "
                "--update-tcb-report", self.severity,
            )
            return
        if report_path.read_text(encoding="utf-8") != expected:
            yield Finding(
                self.id, TCB_REPORT_NAME, 1,
                f"{TCB_REPORT_NAME} does not match the source tree; "
                "regenerate it with --update-tcb-report", self.severity,
            )
