"""Determinism lints: keep every output byte-reproducible.

Everything this repo compares — fault-campaign reports, fleet traces,
bench baselines, exporter output — is compared **byte-for-byte**.  One
``time.time()`` in a report writer or one iteration over an unordered
``set`` feeding an exporter breaks every committed baseline at once.
These rules make that class of regression a lint error instead of a
2 a.m. CI bisect:

* **DET001** — wall-clock reads (``time.time()``, ``datetime.now()``,
  ``perf_counter()``, …).  Virtual time comes from
  :class:`repro.sim.clock.VirtualClock`; wall time is allowed only in
  the benchmark harness, which explicitly separates wall metrics from
  the byte-compared virtual ones.
* **DET002** — ambient entropy (``os.urandom``, the module-level
  ``random.*`` functions, ``uuid.uuid4``, ``secrets.*``).  Randomness
  must flow from a seed: :class:`repro.sim.rng.DeterministicRNG` or
  :class:`repro.crypto.drbg.HashDRBG`.
* **DET003** — iteration over unordered sets in exporter/report-writer
  modules.  Sets iterate in hash order, which varies across runs and
  interpreter versions; wrap the iterable in ``sorted()``.
* **DET004** — ``id()``-based sort keys.  ``id()`` is an address:
  different every run, so the "sorted" order is not an order at all.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterable, Optional

from repro.analysis.astutil import dotted_name
from repro.analysis.engine import Finding, Rule, SourceFile, register

#: Modules allowed to touch entropy/clock primitives: the seeded DRBG
#: and RNG wrap them (behind fixed seeds), and the bench harness
#: measures wall time on purpose (wall metrics are never byte-compared).
EXEMPT_MODULE_GLOBS = (
    "repro.crypto.drbg",
    "repro.sim.rng",
    "repro.bench.*",
    "repro.tools.bench",
)

#: Call suffixes that read the wall clock.
WALL_CLOCK_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Calls that draw ambient (unseeded) entropy.
ENTROPY_NAMES = (
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbelow",
    "secrets.randbits",
    "secrets.choice",
)

#: Module-level ``random.*`` functions (the shared, unseeded global RNG).
GLOBAL_RANDOM_FUNCS = (
    "random.random",
    "random.randint",
    "random.randrange",
    "random.randbytes",
    "random.getrandbits",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.uniform",
    "random.gauss",
)

#: Modules whose output is byte-compared: exporters and report writers.
EXPORTER_MODULE_GLOBS = (
    "repro.obs.export",
    "repro.obs.metrics",
    "repro.tools.*",
    "repro.faults.campaign",
    "repro.faults.plan",
    "repro.bench.*",
    "repro.core.fleet",
)


def _module_matches(module: str, globs: Iterable[str]) -> bool:
    return any(fnmatch.fnmatchcase(module, glob) for glob in globs)


def _call_suffix_match(name: Optional[str], suffixes: Iterable[str]) -> Optional[str]:
    if name is None:
        return None
    for suffix in suffixes:
        if name == suffix or name.endswith("." + suffix):
            return suffix
    return None


@register
class WallClockRule(Rule):
    """No wall-clock reads outside the benchmark harness.

    All timing in the simulation is virtual
    (:class:`repro.sim.clock.VirtualClock`), which is what makes
    reports, traces and campaign output byte-identical across runs and
    machines.  A single ``time.time()`` or ``datetime.now()`` in a code
    path that feeds a report invalidates every committed baseline.

    Exempt: ``repro.bench.*`` / ``repro.tools.bench`` (wall metrics are
    measured on purpose and never byte-compared) and the seeded entropy
    wrappers.  If a rare new call site is legitimate, suppress it with
    ``# repro: noqa[DET001]`` and say why in a comment.
    """

    id = "DET001"
    title = "wall-clock read in deterministic code"
    severity = "error"

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        if _module_matches(source.module, EXEMPT_MODULE_GLOBS):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                hit = _call_suffix_match(
                    dotted_name(node.func), WALL_CLOCK_SUFFIXES
                )
                if hit:
                    yield self.finding(
                        source, node.lineno,
                        f"wall-clock call '{hit}()' breaks byte-identical "
                        "reproducibility; use the VirtualClock",
                    )


@register
class AmbientEntropyRule(Rule):
    """No unseeded randomness outside the seeded wrappers.

    Sealed blobs, nonces, key material and fault plans must all derive
    from explicit seeds so that every run — and every machine in CI —
    produces identical bytes.  ``os.urandom``, ``uuid.uuid4``,
    ``secrets.*`` and the module-level ``random.*`` functions (the
    process-global, time-seeded RNG) all smuggle in ambient entropy.

    Draw randomness from :class:`repro.sim.rng.DeterministicRNG` or
    :class:`repro.crypto.drbg.HashDRBG` instead, seeded from the
    configuration that identifies the run.  ``random.Random(seed)`` is
    fine; bare ``random.Random()`` is not.
    """

    id = "DET002"
    title = "ambient entropy in deterministic code"
    severity = "error"

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        if _module_matches(source.module, EXEMPT_MODULE_GLOBS):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            hit = _call_suffix_match(name, ENTROPY_NAMES + GLOBAL_RANDOM_FUNCS)
            if hit:
                yield self.finding(
                    source, node.lineno,
                    f"'{hit}()' draws ambient entropy; use a seeded "
                    "DeterministicRNG/HashDRBG",
                )
            elif (
                _call_suffix_match(name, ("random.Random", "random.SystemRandom"))
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    source, node.lineno,
                    f"'{name}()' without a seed falls back to OS entropy; "
                    "pass an explicit seed",
                )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset")
    return False


@register
class UnorderedIterationRule(Rule):
    """Exporters and report writers must not iterate over bare sets.

    A ``set`` iterates in hash order — which depends on interpreter
    version, platform and (for str keys in general Python builds) hash
    randomization — so feeding one into a report writer or exporter
    produces different bytes on different runs.  Dicts are
    insertion-ordered and are fine; sets must pass through ``sorted()``
    first.

    The rule fires only in modules whose output is byte-compared (the
    exporters, report writers and the fleet/campaign drivers) and only
    on direct iteration: ``for``-loops, comprehensions, and ``join``/
    ``list``/``tuple`` over a set literal, ``set(...)`` call or set
    comprehension.
    """

    id = "DET003"
    title = "unordered set iteration feeds byte-compared output"
    severity = "error"

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        if not _module_matches(source.module, EXPORTER_MODULE_GLOBS):
            return
        for node in ast.walk(source.tree):
            candidates = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                candidates.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                candidates.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                is_join = isinstance(node.func, ast.Attribute) and node.func.attr == "join"
                if (name in ("list", "tuple") or is_join) and node.args:
                    candidates.append(node.args[0])
            for candidate in candidates:
                if _is_set_expr(candidate):
                    yield self.finding(
                        source, candidate.lineno,
                        "iteration over an unordered set in a byte-compared "
                        "writer; wrap it in sorted()",
                    )


@register
class IdSortKeyRule(Rule):
    """Never sort by ``id()``.

    ``id()`` returns an object's address, which changes on every run —
    a sort keyed on it produces a different order each time, which both
    breaks byte-identical output and masquerades as a total order in
    code review.  Sort by a stable field of the object instead.
    """

    id = "DET004"
    title = "id()-based sort key"
    severity = "error"

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func) or ""
            if not (name in ("sorted", "min", "max") or name.endswith(".sort")):
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                uses_id = (
                    isinstance(value, ast.Name) and value.id == "id"
                ) or (
                    isinstance(value, ast.Lambda)
                    and any(
                        isinstance(sub, ast.Call)
                        and dotted_name(sub.func) == "id"
                        for sub in ast.walk(value.body)
                    )
                )
                if uses_id:
                    yield self.finding(
                        source, node.lineno,
                        "sort key uses id(), which differs every run; "
                        "key on a stable field instead",
                    )
