"""The BOINC-grade work-distribution service (paper §5/§6.2 at scale).

A :class:`~repro.dist.service.WorkDistributionService` runs a whole
volunteer-computing project on a :class:`~repro.core.fleet.FlickerFleet`:
batched work-unit generation into a deterministic
:class:`~repro.dist.records.JobDatabase`, redundant issue of each unit to
``k`` clients with quorum validation over *attested* outputs, per-unit
timeout/resend state machines driven by scheduled events, and per-client
reputation that adapts the redundancy (trusted clients drop to ``k=1``
with periodic spot checks).

The package mirrors the classic BOINC server component map — work
generator, transitioner, scheduler resend logic, validator — collapsed
onto the fleet's discrete-event schedule, with one Flicker twist: a
result only counts toward quorum if its attestation verifies, so the
quorum machinery defends against *input* substitution (a client that ran
the PAL honestly on a doctored unit) while attestation alone already
rules out forged outputs.

See ``docs/DISTRIBUTED.md`` for the protocol, the unit state machine,
and a runnable example.
"""

from repro.dist.client import BEHAVIOR_KINDS, ClientBehavior, parse_behaviors
from repro.dist.quorum import QuorumDecision, QuorumPolicy, UnitQuorum
from repro.dist.records import (
    AssignmentRecord,
    ClientRecord,
    JobDatabase,
    UnitRecord,
)
from repro.dist.reputation import ReputationBook, ReputationPolicy
from repro.dist.service import (
    DistReport,
    JobSpec,
    WorkDistributionService,
    build_report,
)

__all__ = [
    "AssignmentRecord",
    "BEHAVIOR_KINDS",
    "ClientBehavior",
    "ClientRecord",
    "DistReport",
    "JobDatabase",
    "JobSpec",
    "QuorumDecision",
    "QuorumPolicy",
    "ReputationBook",
    "ReputationPolicy",
    "UnitQuorum",
    "UnitRecord",
    "WorkDistributionService",
    "build_report",
    "parse_behaviors",
]
