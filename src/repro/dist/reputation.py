"""Per-client reputation: adaptive redundancy with spot checks.

Classic BOINC: a host that keeps returning valid results earns
``k=1`` issue (no replication), with every Nth unit still replicated as
a spot check; any invalid result, timeout, or lost quorum vote resets
the host to full redundancy.  Deterministic by construction — counters
only, no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dist.quorum import QuorumPolicy


@dataclass(frozen=True)
class ReputationPolicy:
    """Promotion/spot-check knobs."""

    #: Consecutive valid results before a client is trusted.
    promote_after: int = 3
    #: Every Nth unit first-assigned to a trusted client is still issued
    #: at full quorum (0 disables spot checks).
    spot_check_every: int = 4

    def __post_init__(self) -> None:
        if self.promote_after < 1:
            raise ValueError("promote_after must be at least 1")
        if self.spot_check_every < 0:
            raise ValueError("spot_check_every must be >= 0")


class ReputationBook:
    """The server's per-client trust state."""

    def __init__(self, policy: ReputationPolicy = ReputationPolicy()) -> None:
        self.policy = policy
        self._streak: Dict[str, int] = {}
        self._trusted_units: Dict[str, int] = {}

    def streak(self, client: str) -> int:
        """Current run of consecutive valid results."""
        return self._streak.get(client, 0)

    def is_trusted(self, client: str) -> bool:
        return self.streak(client) >= self.policy.promote_after

    def record_valid(self, client: str) -> None:
        """A result of ``client`` ended on a validated unit's digest."""
        self._streak[client] = self.streak(client) + 1

    def record_slash(self, client: str) -> None:
        """Any bad outcome — rejected result, timeout, session failure,
        or an attested result outvoted by the winning digest — resets
        the client to untrusted."""
        self._streak[client] = 0

    def quorum_for(self, client: str, quorum: QuorumPolicy) -> Tuple[int, bool]:
        """``(vote target, is_spot_check)`` for a fresh unit whose first
        assignment goes to ``client``.

        Counts trusted assignments per client, so the spot-check cadence
        is deterministic (every Nth trusted unit re-checks the client at
        full quorum) — call exactly once per fresh unit.
        """
        if not self.is_trusted(client):
            return quorum.base_quorum, False
        count = self._trusted_units.get(client, 0) + 1
        self._trusted_units[client] = count
        every = self.policy.spot_check_every
        if every and count % every == 0:
            return quorum.base_quorum, True
        return quorum.trusted_quorum, False
