"""The deterministic job database: typed unit/result records.

Every fact the final report needs lives in the
:class:`JobDatabase` — unit records, the append-only assignment log,
per-client tallies, and a summary block the service fills in at the end
of a run.  The database dumps to *byte-canonical* JSON
(:meth:`JobDatabase.dump_json`), and
:func:`repro.dist.service.build_report` derives the report from the
database alone, so replaying a dump reproduces the identical report
without re-running the simulation.

Unit ids are seeded: ``unit_id(job_seed, index)`` forks the job's
deterministic RNG per index, so ids are stable under batching order and
never collide within a job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.rng import DeterministicRNG

#: Database schema tag (bumped on any incompatible layout change).
DB_SCHEMA = "repro-dist-db/1"

#: The unit state machine (see docs/DISTRIBUTED.md for the diagram).
UNIT_STATES = ("pending", "issued", "flagged", "validated", "abandoned")

#: Terminal states of one issued assignment.
ASSIGNMENT_STATES = (
    "outstanding",      # issued, no response yet
    "returned",         # result arrived, verification pending
    "verified-ok",      # attestation + structural checks passed: a vote
    "rejected",         # attestation or structural check failed
    "timed-out",        # deadline passed with no response
    "late",             # response arrived after its deadline (ignored)
    "failed",           # the client reported a session abort
    "discarded",        # returned after the unit had already resolved
)


def unit_id(job_seed: int, index: int) -> str:
    """The seeded, stable id of unit ``index`` within a job."""
    tag = DeterministicRNG(job_seed).fork(f"unit:{index}").bytes(5).hex()
    return f"u{index:05d}-{tag}"


@dataclass
class UnitRecord:
    """One work unit: test divisors of ``n`` in ``[start, end)``."""

    unit_id: str
    index: int
    n: int
    start: int
    end: int
    batch: int
    state: str = "pending"
    #: Vote target of the unit's *initial* quorum round.
    quorum: int = 0
    #: Total assignments ever issued for this unit.
    assignments: int = 0
    #: Assignments issued beyond the initial quorum (timeout/flag/reject
    #: replacements) — the numerator of the resend rate.
    resends: int = 0
    #: Escalation rounds triggered by disagreeing attested results.
    flags: int = 0
    #: Winning state digest (hex) once validated.
    digest: str = ""
    #: Owning vTPM tenant ("" = untenanted — the classic single-tenant
    #: job).  Tenanted units execute inside the tenant's virtual TPM on
    #: whichever machine runs them, and their quorum digests are keyed by
    #: the tenant id so votes never cross tenant boundaries.
    tenant: str = ""
    found: Tuple[int, ...] = ()
    issued_at_ms: Optional[float] = None
    resolved_at_ms: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "unit_id": self.unit_id,
            "index": self.index,
            "n": self.n,
            "start": self.start,
            "end": self.end,
            "batch": self.batch,
            "state": self.state,
            "quorum": self.quorum,
            "assignments": self.assignments,
            "resends": self.resends,
            "flags": self.flags,
            "digest": self.digest,
            "tenant": self.tenant,
            "found": list(self.found),
            "issued_at_ms": self.issued_at_ms,
            "resolved_at_ms": self.resolved_at_ms,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UnitRecord":
        data = dict(data)
        data["found"] = tuple(data.get("found", ()))
        data.setdefault("tenant", "")  # dumps predating multi-tenancy
        return cls(**data)


@dataclass
class AssignmentRecord:
    """One (unit, client) issue — the append-only transition log entry."""

    seq: int
    unit_id: str
    client: str
    #: Quorum round this assignment belongs to (1 = the initial cohort).
    round: int
    issued_ms: float
    state: str = "outstanding"
    #: Why a rejected result was rejected (``attestation`` | ``state``).
    reject_reason: str = ""
    digest: str = ""
    found: Tuple[int, ...] = ()
    returned_ms: Optional[float] = None
    verified_ms: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "unit_id": self.unit_id,
            "client": self.client,
            "round": self.round,
            "issued_ms": self.issued_ms,
            "state": self.state,
            "reject_reason": self.reject_reason,
            "digest": self.digest,
            "found": list(self.found),
            "returned_ms": self.returned_ms,
            "verified_ms": self.verified_ms,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AssignmentRecord":
        data = dict(data)
        data["found"] = tuple(data.get("found", ()))
        return cls(**data)


@dataclass
class ClientRecord:
    """Per-client tallies (reputation inputs and report rows)."""

    client: str
    issued: int = 0
    returned: int = 0
    #: Results that ended on the winning digest of a validated unit.
    valid: int = 0
    #: Attested results outvoted by a validated unit's winning digest.
    outvoted: int = 0
    rejected: int = 0
    timeouts: int = 0
    failures: int = 0
    late: int = 0
    spot_checks: int = 0
    sessions: int = 0
    trusted: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "client": self.client,
            "issued": self.issued,
            "returned": self.returned,
            "valid": self.valid,
            "outvoted": self.outvoted,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "late": self.late,
            "spot_checks": self.spot_checks,
            "sessions": self.sessions,
            "trusted": self.trusted,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClientRecord":
        return cls(**data)


class JobDatabase:
    """Everything one distribution run records, dumpable for replay."""

    def __init__(self, job_seed: int, n: int, total_units: int,
                 range_per_unit: int, batch_size: int, start: int = 2) -> None:
        if total_units < 1:
            raise ValueError("a job needs at least one unit")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.job_seed = job_seed
        self.n = n
        self.total_units = total_units
        self.range_per_unit = range_per_unit
        self.batch_size = batch_size
        self.start = start
        #: unit_id → record, in generation (= index) order.
        self.units: Dict[str, UnitRecord] = {}
        self.assignments: List[AssignmentRecord] = []
        #: client id → record, in first-contact order (dumped sorted).
        self.clients: Dict[str, ClientRecord] = {}
        #: End-of-run metrics the service fills in via :meth:`finalize`.
        self.summary: Dict[str, Any] = {}
        self._batches = 0

    # -- work generation --------------------------------------------------------

    @property
    def units_generated(self) -> int:
        return len(self.units)

    def generate_batch(self) -> List[UnitRecord]:
        """Generate the next batch of units (empty when exhausted)."""
        remaining = self.total_units - len(self.units)
        if remaining <= 0:
            return []
        batch: List[UnitRecord] = []
        for _ in range(min(self.batch_size, remaining)):
            index = len(self.units)
            lo = self.start + index * self.range_per_unit
            record = UnitRecord(
                unit_id=unit_id(self.job_seed, index),
                index=index,
                n=self.n,
                start=lo,
                end=lo + self.range_per_unit,
                batch=self._batches,
            )
            self.units[record.unit_id] = record
            batch.append(record)
        self._batches += 1
        return batch

    # -- lookups ----------------------------------------------------------------

    def client(self, client_id: str) -> ClientRecord:
        """Get-or-create the record for ``client_id``."""
        if client_id not in self.clients:
            self.clients[client_id] = ClientRecord(client=client_id)
        return self.clients[client_id]

    def finalize(self, **summary: Any) -> None:
        """Merge end-of-run metrics into the summary block."""
        self.summary.update(summary)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": DB_SCHEMA,
            "job_seed": self.job_seed,
            "n": self.n,
            "total_units": self.total_units,
            "range_per_unit": self.range_per_unit,
            "batch_size": self.batch_size,
            "start": self.start,
            "batches": self._batches,
            "units": [u.to_dict() for u in self.units.values()],
            "assignments": [a.to_dict() for a in self.assignments],
            "clients": [self.clients[c].to_dict()
                        for c in sorted(self.clients)],
            "summary": self.summary,
        }

    def dump_json(self) -> str:
        """Byte-canonical dump: sorted keys, pinned separators, trailing
        newline — identical content is identical bytes."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2,
                          separators=(",", ": ")) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobDatabase":
        if data.get("schema") != DB_SCHEMA:
            raise ValueError(
                f"not a {DB_SCHEMA} dump (schema={data.get('schema')!r})"
            )
        db = cls(
            job_seed=data["job_seed"],
            n=data["n"],
            total_units=data["total_units"],
            range_per_unit=data["range_per_unit"],
            batch_size=data["batch_size"],
            start=data["start"],
        )
        db._batches = data["batches"]
        for unit_data in data["units"]:
            record = UnitRecord.from_dict(unit_data)
            db.units[record.unit_id] = record
        db.assignments = [AssignmentRecord.from_dict(a)
                          for a in data["assignments"]]
        for client_data in data["clients"]:
            record = ClientRecord.from_dict(client_data)
            db.clients[record.client] = record
        db.summary = dict(data["summary"])
        return db

    @classmethod
    def from_json(cls, text: str) -> "JobDatabase":
        return cls.from_dict(json.loads(text))
