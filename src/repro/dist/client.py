"""Client-side behaviors for the distribution service.

Every client runs the real :class:`~repro.apps.distributed.BOINCClient`
stack — Flicker sessions, sealed HMAC key, attested final state — but a
behavior decides what reaches the server:

``honest``
    computes the assigned unit and returns the attested result.
``lazy``
    the *input-substitution* cheat: initializes the factoring state with
    ``cursor == end``, so the PAL honestly attests an instantly-"done"
    empty result.  The attestation **verifies** — execution integrity
    holds — which is exactly why quorum redundancy still matters.
``forge``
    computes honestly but then doctors the claimed final state (an extra
    fake factor).  The attested PCR chain no longer matches the claim,
    so verification rejects it — forged results never reach quorum.
``dropout``
    accepts assignments and never responds (the timeout/resend path).
``flaky``
    computes honestly but responds ``delay_ms`` late — past the
    deadline, the server ignores the result and has already re-issued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

BEHAVIOR_KINDS = ("honest", "lazy", "forge", "dropout", "flaky")


@dataclass(frozen=True)
class ClientBehavior:
    """How one client acts; ``delay_ms`` only matters for ``flaky``."""

    kind: str = "honest"
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in BEHAVIOR_KINDS:
            raise ValueError(
                f"unknown behavior {self.kind!r}; expected one of {BEHAVIOR_KINDS}"
            )
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be >= 0")


def parse_behaviors(spec: str) -> Dict[int, ClientBehavior]:
    """Parse a CLI behavior spec into ``machine index → behavior``.

    The spec is a comma list of ``INDEX:KIND`` (or ``INDEX:flaky:DELAY_MS``)
    entries; unlisted machines stay honest::

        >>> parse_behaviors("0:lazy,2:dropout,3:flaky:90000")[3].delay_ms
        90000.0
        >>> parse_behaviors("")
        {}
    """
    behaviors: Dict[int, ClientBehavior] = {}
    if not spec:
        return behaviors
    for entry in spec.split(","):
        parts = entry.strip().split(":")
        if len(parts) not in (2, 3):
            raise ValueError(f"bad behavior entry {entry!r}; want INDEX:KIND")
        index = int(parts[0])
        if index in behaviors:
            raise ValueError(f"machine {index} listed twice in {spec!r}")
        delay = float(parts[2]) if len(parts) == 3 else 0.0
        behaviors[index] = ClientBehavior(kind=parts[1], delay_ms=delay)
    return behaviors
