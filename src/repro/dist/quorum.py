"""Quorum validation over attested results.

Only results whose Flicker attestation verified ever become *votes*
(the service rejects the rest before they reach this module), so the
quorum machinery defends against exactly one residual attack: a client
that ran the PAL honestly on a *doctored unit* — e.g. initializing the
factoring state with ``cursor == end`` so the PAL attests an honestly
computed answer to the wrong question.  Attestation proves execution
integrity, not input authenticity; redundancy restores the latter.

The rules (see docs/DISTRIBUTED.md):

* A unit validates when its vote target is met **unanimously**.
* Any disagreement between attested results *flags* the unit: the
  target escalates and the unit re-issues to clients that have not
  touched it.  A first-round majority never wins outright — the
  disagreeing minority might be the honest one.
* A flagged unit validates once the escalated target is met (or the
  client pool is exhausted) and one digest holds a strict plurality.
  A persistent tie with no fresh clients left abandons the unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class QuorumPolicy:
    """Redundancy knobs for one project."""

    #: Vote target for units first assigned to an untrusted client.
    base_quorum: int = 3
    #: Vote target for trusted clients (1 = accept a single attested
    #: result; see :mod:`repro.dist.reputation` for promotion rules).
    trusted_quorum: int = 1
    #: Extra votes demanded after each disagreement flag.
    escalation: int = 2
    #: Escalation rounds before a conflicted unit is abandoned.
    max_rounds: int = 4

    def __post_init__(self) -> None:
        if self.base_quorum < 1 or self.trusted_quorum < 1:
            raise ValueError("quorum targets must be at least 1")
        if self.escalation < 1:
            raise ValueError("escalation must add at least one vote")


@dataclass(frozen=True)
class QuorumDecision:
    """What the validator should do with a unit right now."""

    outcome: str                  # "pending" | "validated" | "flag" | "abandon"
    digest: str = ""              # winning digest when validated


class UnitQuorum:
    """Vote state for one unit across all its quorum rounds."""

    def __init__(self, unit_id: str, target: int) -> None:
        if target < 1:
            raise ValueError("vote target must be at least 1")
        self.unit_id = unit_id
        #: Current vote target (escalates on flags).
        self.target = target
        #: The initial target, before any escalation.
        self.initial_target = target
        #: ``(client, digest)`` in verification order.
        self.votes: List[Tuple[str, str]] = []
        self.flagged = False
        self.rounds = 1

    # -- votes ------------------------------------------------------------------

    def add_vote(self, client: str, digest: str) -> None:
        self.votes.append((client, digest))

    def tally(self) -> Dict[str, int]:
        """digest → vote count, in first-seen order (deterministic)."""
        counts: Dict[str, int] = {}
        for _, digest in self.votes:
            counts[digest] = counts.get(digest, 0) + 1
        return counts

    def voters_for(self, digest: str) -> List[str]:
        return [client for client, d in self.votes if d == digest]

    # -- escalation -------------------------------------------------------------

    def escalate(self, policy: QuorumPolicy, pool_size: int) -> None:
        """A disagreement flag: raise the target (clamped to the number
        of clients that could ever vote) and open the next round."""
        self.flagged = True
        self.rounds += 1
        self.target = min(self.target + policy.escalation, pool_size)

    # -- the decision function --------------------------------------------------

    def decide(self, policy: QuorumPolicy,
               pool_exhausted: bool = False) -> QuorumDecision:
        """Evaluate the unit after a new vote (or a dead assignment).

        ``pool_exhausted`` means no further votes can ever arrive: no
        assignment is in flight and every client has already touched the
        unit (or timed out of it).
        """
        counts = self.tally()
        votes = len(self.votes)
        if not self.flagged:
            if len(counts) > 1:
                if self.rounds >= policy.max_rounds:
                    return QuorumDecision("abandon")
                return QuorumDecision("flag")
            if counts and (votes >= self.target or pool_exhausted):
                # Unanimous at target — or unanimous among every vote the
                # shrunken pool could produce (timeouts ate the rest).
                return QuorumDecision("validated", digest=self.votes[0][1])
            if pool_exhausted:
                return QuorumDecision("abandon")   # no votes at all
            return QuorumDecision("pending")
        # Flagged: plurality decides once the escalated target is met
        # (or no more votes can come).
        if votes < self.target and not pool_exhausted:
            return QuorumDecision("pending")
        ranked = sorted(counts.items(), key=lambda item: (-item[1],))
        if len(ranked) == 1 or ranked[0][1] > ranked[1][1]:
            return QuorumDecision("validated", digest=ranked[0][0])
        if pool_exhausted or self.rounds >= policy.max_rounds:
            return QuorumDecision("abandon")       # unresolvable tie
        return QuorumDecision("flag")
