"""The work-distribution service: BOINC's server components on one
discrete-event schedule.

Three cooperating processes per run:

* the **dispatcher** (server clock) — generates unit batches into the
  :class:`~repro.dist.records.JobDatabase`, matches idle clients to
  units needing votes, arms per-assignment timeout events, and applies
  quorum decisions;
* the **validator** (the fleet's dedicated verification clock) — checks
  each returned result's Flicker attestation plus the structural claims
  (right unit, complete range), charging the RSA public-op cost where a
  backlog can never stall dispatch;
* one **client process per fleet machine** — real
  :class:`~repro.apps.distributed.BOINCClient` sessions, shaped by a
  :class:`~repro.dist.client.ClientBehavior`.

No wall clock anywhere: timeouts are scheduler events, ordering is the
``(time, seq)`` heap, and the final report is a pure function of the
job database — byte-identical across runs, worker counts, and replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from collections import deque

from repro.apps.distributed import (
    VERIFY_PUBLIC_OPS,
    BOINCClient,
    ClientProgress,
    FactoringState,
    FactoringWorkUnit,
    StopWork,
)
from repro.crypto.sha1 import sha1
from repro.dist.client import ClientBehavior
from repro.dist.quorum import QuorumPolicy, UnitQuorum
from repro.dist.records import AssignmentRecord, JobDatabase, UnitRecord
from repro.dist.reputation import ReputationBook, ReputationPolicy
from repro.errors import PALRuntimeError

#: Report schema tag.
REPORT_SCHEMA = "repro-dist-report/1"


@dataclass(frozen=True)
class JobSpec:
    """One project's workload and service knobs."""

    n: int
    total_units: int
    range_per_unit: int = 400
    batch_size: int = 16
    start: int = 2
    #: Flicker session slice length on the clients.
    slice_ms: float = 2000.0
    #: Per-assignment response deadline (virtual ms).
    timeout_ms: float = 60_000.0
    #: Safety valve: total assignments per unit before it is abandoned.
    max_attempts_per_unit: int = 12

    def __post_init__(self) -> None:
        if self.total_units < 1:
            raise ValueError("total_units must be positive")
        if self.timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive")
        if self.max_attempts_per_unit < 1:
            raise ValueError("max_attempts_per_unit must be positive")


# -- protocol messages ---------------------------------------------------------


@dataclass(frozen=True)
class DistAssignment:
    """Server → client: run this unit, attest with this nonce.

    ``tenant`` ("" = untenanted) names the vTPM tenant the unit belongs
    to; the client must execute and attest inside that tenant's virtual
    TPM (:mod:`repro.vtpm`)."""

    seq: int
    unit_id: str
    index: int
    n: int
    start: int
    end: int
    nonce: bytes
    tenant: str = ""


@dataclass(frozen=True)
class DistResult:
    """Client → server: a finished, attested unit."""

    machine_id: str
    seq: int
    unit_id: str
    progress: ClientProgress
    session: Any
    attestation: Any
    nonce: bytes
    tenant: str = ""


@dataclass(frozen=True)
class DistFailure:
    """Client → server: the session aborted (fail-closed platform)."""

    machine_id: str
    seq: int
    unit_id: str
    reason: str


@dataclass(frozen=True)
class _Timeout:
    """Scheduler → dispatcher: an assignment's deadline passed."""

    seq: int


@dataclass(frozen=True)
class _Verdict:
    """Validator → dispatcher: one verified (or rejected) result."""

    seq: int
    ok: bool
    reason: str
    digest: str
    found: Tuple[int, ...]


@dataclass(frozen=True)
class _StopVerify:
    """Dispatcher → validator: no more results are coming."""


# -- the service ---------------------------------------------------------------


class WorkDistributionService:
    """Run one distribution project on a :class:`FlickerFleet`.

    Usage::

        fleet = FlickerFleet(num_machines=8, seed=2008)
        spec = JobSpec(n=15015 * 1_000_003, total_units=32)
        service = WorkDistributionService(fleet, spec)
        report = service.run()

    ``behaviors`` maps machine index → :class:`ClientBehavior`
    (unlisted machines are honest).  Faults are injected from outside
    exactly as for any fleet run: install a
    :class:`~repro.faults.FaultInjector` on ``fleet.hosts[i].platform``
    before calling :meth:`run`.
    """

    def __init__(
        self,
        fleet,
        spec: JobSpec,
        quorum: QuorumPolicy = QuorumPolicy(),
        reputation: ReputationPolicy = ReputationPolicy(),
        behaviors: Optional[Dict[int, ClientBehavior]] = None,
        job_seed: Optional[int] = None,
        tenants: Optional[Sequence[str]] = None,
    ) -> None:
        self.fleet = fleet
        self.spec = spec
        self.quorum_policy = quorum
        self.reputation_policy = reputation
        self.behaviors = dict(behaviors or {})
        #: vTPM tenants the job's units cycle through (unit ``i`` belongs
        #: to ``tenants[i % len(tenants)]``); empty = the classic
        #: untenanted job, byte-identical to pre-multi-tenant runs.
        self.tenants = tuple(tenants or ())
        for index in self.behaviors:
            if not 0 <= index < len(fleet.hosts):
                raise ValueError(f"behavior for machine {index} out of range")
        self.book = ReputationBook(reputation)
        self.db = JobDatabase(
            job_seed=fleet.seed if job_seed is None else job_seed,
            n=spec.n, total_units=spec.total_units,
            range_per_unit=spec.range_per_unit,
            batch_size=spec.batch_size, start=spec.start,
        )
        self._quorums: Dict[str, UnitQuorum] = {}
        self._open_units: List[str] = []
        self._idle: Deque[str] = deque()
        self._outstanding: Dict[int, AssignmentRecord] = {}
        self._timeouts: Dict[int, Any] = {}
        self._participants: Dict[str, Set[str]] = {}
        self._inflight: Dict[str, int] = {}
        self._dead: Set[str] = set()
        self._resolved = 0
        self._last_resolved_ms = 0.0
        self._verify_count = 0
        self._verify_backlog = 0
        self._max_verify_backlog = 0
        self._ran = False
        self._hub = fleet.server_hub
        self._metrics = (fleet.server_hub.registry
                         if fleet.server_hub is not None else None)

    # -- orchestration ----------------------------------------------------------

    def run(self) -> "DistReport":
        """Spawn every process, drive the schedule dry, and report."""
        if self._ran:
            raise RuntimeError("a WorkDistributionService runs exactly once")
        self._ran = True
        for index, host in enumerate(self.fleet.hosts):
            behavior = self.behaviors.get(index, ClientBehavior())
            self.fleet.spawn(host, self._client_proc(host, behavior))
        self.fleet.spawn_server(self._dispatcher())
        self.fleet.spawn_verifier(self._validator())
        self.fleet.run()
        self._finalize()
        return build_report(self.db)

    # -- the dispatcher (server clock) ------------------------------------------

    def _dispatcher(self):
        for host in self.fleet.hosts:
            self._idle.append(host.machine_id)
        self._assign_all()
        while self._resolved < self.db.total_units:
            message = yield self.fleet.server_mailbox.receive()
            if isinstance(message, DistResult):
                self._on_result(message)
            elif isinstance(message, DistFailure):
                self._on_failure(message)
            elif isinstance(message, _Timeout):
                self._on_timeout(message)
            elif isinstance(message, _Verdict):
                self._on_verdict(message)
            self._assign_all()
        for event in self._timeouts.values():
            self.fleet.scheduler.cancel(event)
        self._timeouts.clear()
        for host in self.fleet.hosts:
            self.fleet.send_to_host(host, StopWork())
        self.fleet.post_local(self.fleet.server_clock,
                              self.fleet.verify_mailbox, _StopVerify())

    # -- work matching ----------------------------------------------------------

    def _needed(self, unit_id: str) -> int:
        """Votes the unit still needs beyond everything in flight."""
        quorum = self._quorums.get(unit_id)
        target = quorum.target if quorum else self._default_target()
        votes = len(quorum.votes) if quorum else 0
        return target - votes - self._inflight.get(unit_id, 0)

    def _default_target(self) -> int:
        return min(self.quorum_policy.base_quorum, len(self.fleet.hosts))

    def _eligible(self, client: str, unit_id: str) -> bool:
        return client not in self._participants.get(unit_id, set())

    def _pool_exhausted(self, unit_id: str) -> bool:
        """No vote for this unit can ever arrive any more."""
        if self._inflight.get(unit_id, 0) > 0:
            return False
        participants = self._participants.get(unit_id, set())
        return all(host.machine_id in participants
                   or host.machine_id in self._dead
                   for host in self.fleet.hosts)

    def _assign_all(self) -> None:
        """Match idle clients to units needing votes, batching in more
        units whenever current work is saturated."""
        while self._idle:
            self._open_units = [
                u for u in self._open_units
                if self.db.units[u].state not in ("validated", "abandoned")
            ]
            made = False
            for unit_id in self._open_units:
                if self._needed(unit_id) <= 0:
                    continue
                client = self._pick_idle(unit_id)
                if client is not None:
                    self._issue(unit_id, client)
                    made = True
                    break
            if not made and not self._refill():
                break

    def _pick_idle(self, unit_id: str) -> Optional[str]:
        for position, client in enumerate(self._idle):
            if self._eligible(client, unit_id):
                del self._idle[position]
                return client
        return None

    def _refill(self) -> bool:
        batch = self.db.generate_batch()
        if not batch:
            return False
        if self.tenants:
            for record in batch:
                record.tenant = self.tenants[record.index % len(self.tenants)]
        self._open_units.extend(record.unit_id for record in batch)
        if self._hub is not None:
            self._hub.event("dist-batch", category="dist",
                            batch=batch[0].batch, units=len(batch))
        return True

    def _issue(self, unit_id: str, client: str) -> None:
        unit = self.db.units[unit_id]
        now = self.fleet.server_clock.now()
        if unit_id not in self._quorums:
            target, spot = self.book.quorum_for(client, self.quorum_policy)
            target = min(target, len(self.fleet.hosts))
            self._quorums[unit_id] = UnitQuorum(unit_id, target)
            unit.quorum = target
            unit.state = "issued"
            unit.issued_at_ms = now
            if spot:
                self.db.client(client).spot_checks += 1
        quorum = self._quorums[unit_id]
        if unit.assignments >= quorum.initial_target:
            unit.resends += 1
        seq = len(self.db.assignments)
        record = AssignmentRecord(
            seq=seq, unit_id=unit_id, client=client,
            round=quorum.rounds, issued_ms=now,
        )
        self.db.assignments.append(record)
        self._outstanding[seq] = record
        self._participants.setdefault(unit_id, set()).add(client)
        self._inflight[unit_id] = self._inflight.get(unit_id, 0) + 1
        unit.assignments += 1
        self.db.client(client).issued += 1
        host = self.fleet.host(client)
        self.fleet.send_to_host(host, DistAssignment(
            seq=seq, unit_id=unit_id, index=unit.index, n=unit.n,
            start=unit.start, end=unit.end, nonce=self._nonce(seq),
            tenant=unit.tenant,
        ))
        self._timeouts[seq] = self.fleet.scheduler.after(
            self.spec.timeout_ms,
            partial(self.fleet.server_mailbox.put, _Timeout(seq)),
            label=f"dist:timeout:{seq}",
        )

    @staticmethod
    def _nonce(seq: int) -> bytes:
        return sha1(b"dist-server" + seq.to_bytes(8, "big"))

    # -- event handlers ---------------------------------------------------------

    def _revive(self, client: str) -> None:
        self._dead.discard(client)
        self._idle.append(client)

    def _on_result(self, message: DistResult) -> None:
        record = self._outstanding.pop(message.seq, None)
        client = self.db.client(message.machine_id)
        client.returned += 1
        if record is None:
            # Past its deadline: the unit moved on without this client.
            late = self.db.assignments[message.seq]
            late.state = "late"
            late.returned_ms = self.fleet.server_clock.now()
            client.late += 1
            self._count("dist_results_late_total")
            self._revive(message.machine_id)
            return
        self.fleet.scheduler.cancel(self._timeouts.pop(record.seq))
        record.returned_ms = self.fleet.server_clock.now()
        self._revive(message.machine_id)
        unit = self.db.units[record.unit_id]
        if unit.state in ("validated", "abandoned"):
            record.state = "discarded"
            self._dec_inflight(record.unit_id)
            return
        record.state = "returned"
        self._verify_backlog += 1
        self._max_verify_backlog = max(self._max_verify_backlog,
                                       self._verify_backlog)
        if self._metrics is not None:
            self._metrics.gauge("dist_verify_queue_depth").set(
                self._verify_backlog)
            self._metrics.histogram("dist_verify_queue_depth_hist").observe(
                self._verify_backlog)
        self.fleet.post_local(self.fleet.server_clock,
                              self.fleet.verify_mailbox, message)

    def _on_failure(self, message: DistFailure) -> None:
        record = self._outstanding.pop(message.seq, None)
        self.db.client(message.machine_id).failures += 1
        self.book.record_slash(message.machine_id)
        self._count("dist_failures_total")
        self._revive(message.machine_id)
        if record is None:
            return
        self.fleet.scheduler.cancel(self._timeouts.pop(record.seq))
        record.state = "failed"
        record.returned_ms = self.fleet.server_clock.now()
        self._dec_inflight(record.unit_id)
        self._apply_decision(record.unit_id)

    def _on_timeout(self, message: _Timeout) -> None:
        record = self._outstanding.pop(message.seq, None)
        if record is None:
            return                       # answered just before the deadline
        self._timeouts.pop(message.seq, None)
        record.state = "timed-out"
        self.db.client(record.client).timeouts += 1
        self.book.record_slash(record.client)
        self._dead.add(record.client)
        self._count("dist_timeouts_total")
        self._dec_inflight(record.unit_id)
        # A newly-dead client can exhaust other units' voter pools.
        for unit_id in list(self._open_units):
            self._apply_decision(unit_id)

    def _on_verdict(self, verdict: _Verdict) -> None:
        record = self.db.assignments[verdict.seq]
        record.verified_ms = self.fleet.server_clock.now()
        self._verify_count += 1
        self._verify_backlog -= 1
        if self._metrics is not None:
            self._metrics.gauge("dist_verify_queue_depth").set(
                self._verify_backlog)
        unit = self.db.units[record.unit_id]
        if unit.state in ("validated", "abandoned"):
            record.state = "discarded"
            self._dec_inflight(record.unit_id)
            return
        if not verdict.ok:
            record.state = "rejected"
            record.reject_reason = verdict.reason
            self.db.client(record.client).rejected += 1
            self.book.record_slash(record.client)
            self._count("dist_results_rejected_total")
            self._dec_inflight(record.unit_id)
            self._apply_decision(record.unit_id)
            return
        record.state = "verified-ok"
        record.digest = verdict.digest
        record.found = verdict.found
        quorum = self._quorums[record.unit_id]
        quorum.add_vote(record.client, verdict.digest)
        self._dec_inflight(record.unit_id)
        self._apply_decision(record.unit_id)

    def _dec_inflight(self, unit_id: str) -> None:
        self._inflight[unit_id] = self._inflight.get(unit_id, 1) - 1

    # -- quorum decisions -------------------------------------------------------

    def _apply_decision(self, unit_id: str) -> None:
        unit = self.db.units[unit_id]
        if unit.state in ("validated", "abandoned", "pending"):
            return
        quorum = self._quorums[unit_id]
        if unit.assignments >= self.spec.max_attempts_per_unit \
                and self._needed(unit_id) > 0:
            self._resolve(unit, quorum, "abandoned")
            return
        pool_exhausted = self._pool_exhausted(unit_id)
        while True:
            decision = quorum.decide(self.quorum_policy,
                                     pool_exhausted=pool_exhausted)
            if decision.outcome != "flag":
                break
            # Escalate, then re-evaluate: with a clamped pool the
            # escalated target may already be met by existing votes
            # (each escalation burns a round, so this terminates).
            unit.state = "flagged"
            unit.flags += 1
            quorum.escalate(self.quorum_policy, len(self.fleet.hosts))
            self._count("dist_units_flagged_total")
            if self._hub is not None:
                self._hub.event("dist-unit-flagged", category="dist",
                                unit=unit_id, target=quorum.target)
        if decision.outcome == "validated":
            unit.digest = decision.digest
            for client, digest in quorum.votes:
                record = self.db.client(client)
                if digest == decision.digest:
                    record.valid += 1
                    self.book.record_valid(client)
                else:
                    record.outvoted += 1
                    self.book.record_slash(client)
            for record in self.db.assignments:
                if record.unit_id == unit_id and record.digest == decision.digest:
                    unit.found = record.found
                    break
            self._resolve(unit, quorum, "validated")
        elif decision.outcome == "abandon":
            for client, _ in quorum.votes:
                self.book.record_slash(client)
            self._resolve(unit, quorum, "abandoned")

    def _resolve(self, unit: UnitRecord, quorum: UnitQuorum,
                 state: str) -> None:
        unit.state = state
        unit.resolved_at_ms = self.fleet.server_clock.now()
        self._resolved += 1
        self._last_resolved_ms = max(self._last_resolved_ms,
                                     unit.resolved_at_ms)
        self._count(f"dist_units_{state}_total")
        if self._hub is not None and unit.issued_at_ms is not None:
            self._hub.record_complete(
                "unit-lifecycle", "dist",
                unit.resolved_at_ms - unit.issued_at_ms,
                unit=unit.unit_id, state=state, rounds=quorum.rounds,
                assignments=unit.assignments,
            )

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    # -- the validator (verification clock) -------------------------------------

    def _validator(self):
        while True:
            message = yield self.fleet.verify_mailbox.receive()
            if isinstance(message, _StopVerify):
                return
            verdict = self._verify_one(message)
            self.fleet.post_local(self.fleet.verify_clock,
                                  self.fleet.server_mailbox, verdict)

    def _verify_one(self, message: DistResult) -> _Verdict:
        clock = self.fleet.verify_clock
        ops_ms = (self.fleet.profile.host.rsa1024_public_op_ms
                  * VERIFY_PUBLIC_OPS)
        with clock.span("verify-result"):
            clock.advance(ops_ms)
        verifier = self.fleet.verifier_for(message.machine_id)
        report = verifier.verify(
            message.attestation, message.session.image, message.nonce,
            pal_extends=[sha1(message.progress.state_bytes)],
        )
        if not report.ok:
            return _Verdict(message.seq, False, "attestation", "", ())
        unit = self.db.units[message.unit_id]
        if unit.tenant:
            # Tenanted unit: the quote must come from the unit's tenant —
            # the AIK certificate's subject carries the tenant identity
            # the multiplexer enrolled with the Privacy CA.
            subject = message.attestation.aik_certificate.platform_label
            if (message.tenant != unit.tenant
                    or not subject.endswith(f"/tenant/{unit.tenant}")):
                return _Verdict(message.seq, False, "tenant", "", ())
        state = message.progress.state
        if (state.unit_id != unit.index or state.n != unit.n
                or state.end != unit.end or not state.done):
            return _Verdict(message.seq, False, "state", "", ())
        digest = self._unit_digest(unit.tenant, message.progress.state_bytes)
        return _Verdict(message.seq, True, "", digest, state.found)

    @staticmethod
    def _unit_digest(tenant: str, state_bytes: bytes) -> str:
        """Vote digest; tenant-keyed so quorum votes can never collide
        across tenant boundaries (untenanted stays the plain digest)."""
        if not tenant:
            return sha1(state_bytes).hex()
        return sha1(tenant.encode("utf-8") + b"\x00" + state_bytes).hex()

    # -- the clients ------------------------------------------------------------

    def _tenant_scenario(self, name: str) -> str:
        """Deterministic latency scenario for a tenant: cycle the known
        scenarios in this job's tenant order."""
        from repro.vtpm.mux import TENANT_SCENARIOS

        scenarios = tuple(sorted(TENANT_SCENARIOS))
        return scenarios[self.tenants.index(name) % len(scenarios)]

    def _client_proc(self, host, behavior: ClientBehavior):
        client = BOINCClient(host.platform)
        while True:
            message = yield host.mailbox.receive()
            if isinstance(message, StopWork):
                return
            if behavior.kind == "dropout":
                continue
            tenant = message.tenant or None
            if tenant is not None and tenant not in host.platform.vtpm.tenants:
                host.platform.vtpm.create_tenant(
                    tenant, scenario=self._tenant_scenario(tenant))
            start = message.end if behavior.kind == "lazy" else message.start
            unit = FactoringWorkUnit(unit_id=message.index, n=message.n,
                                     start=start, end=message.end)
            try:
                progress = client.start_unit(unit, tenant=tenant)
                result = None
                while not progress.done:
                    yield 0.0
                    progress, result = client.work_slice(
                        progress, self.spec.slice_ms, nonce=message.nonce,
                        tenant=tenant)
                attestation = host.platform.attest(message.nonce, result,
                                                   tenant=tenant)
            except PALRuntimeError as exc:
                # Fail-closed: a faulted or aborted session never
                # produces a result at all — the client reports the
                # failure and the unit re-issues elsewhere.
                self.fleet.send_to_server(host, DistFailure(
                    machine_id=host.machine_id, seq=message.seq,
                    unit_id=message.unit_id, reason=type(exc).__name__,
                ))
                continue
            if behavior.kind == "forge":
                state = progress.state
                forged = FactoringState(
                    unit_id=state.unit_id, n=state.n, cursor=state.cursor,
                    end=state.end, found=state.found + (999983,),
                )
                progress = ClientProgress(
                    sealed_key=progress.sealed_key,
                    state_bytes=forged.encode(),
                    mac=progress.mac, done=True,
                )
            if behavior.kind == "flaky" and behavior.delay_ms > 0:
                yield behavior.delay_ms
            self.fleet.send_to_server(host, DistResult(
                machine_id=host.machine_id, seq=message.seq,
                unit_id=message.unit_id, progress=progress,
                session=result, attestation=attestation,
                nonce=message.nonce, tenant=message.tenant,
            ))

    # -- finalization -----------------------------------------------------------

    def _finalize(self) -> None:
        for host in self.fleet.hosts:
            record = self.db.client(host.machine_id)
            record.sessions = host.sessions_run()
            record.trusted = self.book.is_trusted(host.machine_id)
        verify_busy = self.fleet.verify_clock.busy_ms
        self.db.finalize(
            makespan_ms=round(self._last_resolved_ms, 6),
            total_sessions=sum(c.sessions for c in self.db.clients.values()),
            verify_count=self._verify_count,
            verify_busy_ms=round(verify_busy, 6),
            max_verify_queue_depth=self._max_verify_backlog,
            fleet_size=len(self.fleet.hosts),
            fleet_seed=self.fleet.seed,
        )


# -- reporting -----------------------------------------------------------------


@dataclass
class DistReport:
    """The final report — a pure function of the job database."""

    fleet_size: int
    total_units: int
    units_validated: int
    units_abandoned: int
    units_unresolved: int
    units_flagged: int
    assignments: int
    resends: int
    timeouts: int
    late: int
    failures: int
    rejected_attestation: int
    rejected_state: int
    makespan_ms: float
    total_sessions: int
    verify_count: int
    verify_busy_ms: float
    max_verify_queue_depth: int
    found: Tuple[int, ...]
    per_client: List[Dict[str, Any]]

    @property
    def resend_rate(self) -> float:
        return self.resends / self.assignments if self.assignments else 0.0

    @property
    def sessions_per_virtual_second(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return self.total_sessions / (self.makespan_ms / 1000.0)

    @property
    def verify_throughput_per_vsec(self) -> float:
        """Verified results per virtual second of *validator* busy time —
        the server's headline capacity number."""
        if self.verify_busy_ms <= 0:
            return 0.0
        return self.verify_count / (self.verify_busy_ms / 1000.0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly, byte-deterministic encoding."""
        return {
            "schema": REPORT_SCHEMA,
            "fleet_size": self.fleet_size,
            "total_units": self.total_units,
            "units_validated": self.units_validated,
            "units_abandoned": self.units_abandoned,
            "units_unresolved": self.units_unresolved,
            "units_flagged": self.units_flagged,
            "assignments": self.assignments,
            "resends": self.resends,
            "resend_rate": round(self.resend_rate, 6),
            "timeouts": self.timeouts,
            "late": self.late,
            "failures": self.failures,
            "rejected_attestation": self.rejected_attestation,
            "rejected_state": self.rejected_state,
            "makespan_ms": round(self.makespan_ms, 6),
            "total_sessions": self.total_sessions,
            "sessions_per_virtual_second":
                round(self.sessions_per_virtual_second, 6),
            "verify_count": self.verify_count,
            "verify_busy_ms": round(self.verify_busy_ms, 6),
            "verify_throughput_per_vsec":
                round(self.verify_throughput_per_vsec, 6),
            "max_verify_queue_depth": self.max_verify_queue_depth,
            "found": list(self.found),
            "per_client": self.per_client,
        }


def build_report(db: JobDatabase) -> DistReport:
    """Derive the report from the database alone (live run or replay)."""
    states = {state: 0 for state in
              ("validated", "abandoned", "pending", "issued", "flagged")}
    for unit in db.units.values():
        states[unit.state] = states.get(unit.state, 0) + 1
    rejected = {"attestation": 0, "state": 0}
    timeouts = late = failures = 0
    for record in db.assignments:
        if record.state == "rejected":
            rejected[record.reject_reason] = (
                rejected.get(record.reject_reason, 0) + 1)
        elif record.state == "timed-out":
            timeouts += 1
        elif record.state == "late":
            late += 1
        elif record.state == "failed":
            failures += 1
    found: Set[int] = set()
    for unit in db.units.values():
        if unit.state == "validated":
            found.update(unit.found)
    summary = db.summary
    return DistReport(
        fleet_size=summary.get("fleet_size", len(db.clients)),
        total_units=db.total_units,
        units_validated=states["validated"],
        units_abandoned=states["abandoned"],
        units_unresolved=(db.total_units - states["validated"]
                          - states["abandoned"]),
        units_flagged=sum(1 for u in db.units.values() if u.flags),
        assignments=len(db.assignments),
        resends=sum(u.resends for u in db.units.values()),
        timeouts=timeouts,
        late=late,
        failures=failures,
        rejected_attestation=rejected["attestation"],
        rejected_state=rejected["state"],
        makespan_ms=summary.get("makespan_ms", 0.0),
        total_sessions=summary.get("total_sessions", 0),
        verify_count=summary.get("verify_count", 0),
        verify_busy_ms=summary.get("verify_busy_ms", 0.0),
        max_verify_queue_depth=summary.get("max_verify_queue_depth", 0),
        found=tuple(sorted(found)),
        per_client=[db.clients[c].to_dict() for c in sorted(db.clients)],
    )
