"""SSH password authentication with a minimal-TCB password path (§6.3.1).

Goal: even a fully compromised server OS never sees the user's cleartext
password; and the *client* can verify that guarantee before typing it.

Figure 7's protocol, across two Flicker sessions on the server:

* **Session 1 (setup).**  The SSH PAL generates K_PAL inside Flicker,
  seals K⁻¹_PAL to a future invocation of itself, and outputs the public
  key.  The tqd attests; the client verifies the attestation and thereby
  knows the private key exists only inside this PAL.
* **Session 2 (login).**  The client encrypts {password, nonce} under
  K_PAL.  The PAL unseals K⁻¹_PAL, decrypts, checks the nonce, computes
  ``md5crypt(salt, password)``, extends ⊥ into PCR 17 (revoking its own
  access to sealed secrets), and outputs the hash — which the untrusted
  server compares against ``/etc/passwd``.

The password exists decrypted only between the PKCS#1 decrypt and the end
of the PAL; the SLB Core's cleanup erases it before the OS resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.attestation import BOTTOM_MEASUREMENT, Attestation
from repro.core.pal import PAL, PALContext
from repro.core.secure_channel import EstablishedChannel, SecureChannelClient
from repro.core.session import FlickerPlatform, SessionResult
from repro.crypto.md5crypt import md5crypt
from repro.crypto.sha1 import sha1
from repro.errors import PALRuntimeError, SecureChannelError
from repro.sim.rng import DeterministicRNG

_CMD_SETUP = 0
_CMD_LOGIN = 1


@dataclass
class PasswdEntry:
    """One ``/etc/passwd`` line's crypt fields."""

    username: str
    salt: bytes
    hashed: str  # full $1$salt$hash crypt string

    @classmethod
    def create(cls, username: str, password: bytes, salt: bytes) -> "PasswdEntry":
        """What ``passwd(8)`` would store for this user."""
        return cls(username=username, salt=salt, hashed=md5crypt(password, salt))


def _encode_login_inputs(ciphertext: bytes, salt: bytes, sdata: bytes, nonce: bytes) -> bytes:
    return (
        bytes([_CMD_LOGIN])
        + nonce
        + len(salt).to_bytes(2, "big") + salt
        + len(sdata).to_bytes(4, "big") + sdata
        + len(ciphertext).to_bytes(4, "big") + ciphertext
    )


class SSHPasswordPAL(PAL):
    """The server-side PAL for both Figure 7 sessions."""

    name = "ssh-password"
    modules = ("secure_channel",)

    def run(self, ctx: PALContext) -> None:
        if not ctx.inputs:
            raise PALRuntimeError("SSH PAL requires a command input")
        command = ctx.inputs[0]
        if command == _CMD_SETUP:
            ctx.write_output(ctx.secure_channel.establish())
        elif command == _CMD_LOGIN:
            self._login(ctx)
        else:
            raise PALRuntimeError(f"unknown SSH-PAL command {command}")

    def _login(self, ctx: PALContext) -> None:
        payload = ctx.inputs[1:]
        nonce = payload[:20]
        off = 20
        salt_len = int.from_bytes(payload[off : off + 2], "big")
        salt = payload[off + 2 : off + 2 + salt_len]
        off += 2 + salt_len
        sdata_len = int.from_bytes(payload[off : off + 4], "big")
        sdata = payload[off + 4 : off + 4 + sdata_len]
        off += 4 + sdata_len
        ct_len = int.from_bytes(payload[off : off + 4], "big")
        ciphertext = payload[off + 4 : off + 4 + ct_len]

        plaintext = ctx.secure_channel.open(sdata, ciphertext)
        pw_len = int.from_bytes(plaintext[:2], "big")
        password = plaintext[2 : 2 + pw_len]
        nonce_prime = plaintext[2 + pw_len : 22 + pw_len]
        if nonce_prime != nonce:
            raise PALRuntimeError("login nonce mismatch (replayed ciphertext?)")

        hashed = ctx.crypto.md5crypt(password, salt)
        # extend(PCR17, ⊥): revoke this session's access to sealed secrets
        # before emitting any output (Figure 7).
        ctx.tpm.pcr_extend(BOTTOM_MEASUREMENT)
        ctx.write_output(hashed.encode("ascii"))


class SSHServer:
    """The modified sshd: Figure 7's server role plus the flicker-module
    plumbing.  Holds the password file; never sees a cleartext password."""

    def __init__(self, platform: FlickerPlatform, pal: Optional[SSHPasswordPAL] = None) -> None:
        self.platform = platform
        self.pal = pal or SSHPasswordPAL()
        self.passwd: Dict[str, PasswdEntry] = {}
        self._channel_output: Optional[bytes] = None
        self._nonce_counter = 0

    def add_user(self, entry: PasswdEntry) -> None:
        """Install a user's passwd entry."""
        self.passwd[entry.username] = entry

    def _fresh_nonce(self) -> bytes:
        self._nonce_counter += 1
        return sha1(b"sshd-nonce" + self._nonce_counter.to_bytes(8, "big"))

    # -- Flicker session 1: channel setup -----------------------------------------

    def run_setup_session(self, client_nonce: bytes) -> Tuple[SessionResult, Attestation]:
        """Execute the setup PAL and produce its attestation."""
        session = self.platform.execute_pal(
            self.pal, inputs=bytes([_CMD_SETUP]), nonce=client_nonce
        )
        self._channel_output = session.outputs
        attestation = self.platform.attest(client_nonce, session)
        return session, attestation

    # -- Flicker session 2: login -----------------------------------------------------

    def run_login_session(
        self, username: str, ciphertext: bytes, sdata: bytes, nonce: bytes
    ) -> bool:
        """Execute the login PAL and compare its output to /etc/passwd."""
        entry = self.passwd.get(username)
        if entry is None:
            return False
        inputs = _encode_login_inputs(ciphertext, entry.salt, sdata, nonce)
        session = self.platform.execute_pal(self.pal, inputs=inputs)
        return session.outputs.decode("ascii") == entry.hashed


@dataclass
class LoginOutcome:
    """What the client experienced over one full connection."""

    authenticated: bool
    #: Client-perceived time from TCP connect to the password prompt.
    time_to_prompt_ms: float
    #: Client-perceived time from password entry to the session opening.
    time_after_entry_ms: float


class SSHClient:
    """The modified OpenSSH client with the flicker-password method.

    Implements §6.3.1's "obvious optimization": the channel keypair is
    created only on the first connection; the client caches K_PAL and the
    sealed private key (sdata) and presents the latter on later logins,
    skipping the expensive setup PAL and its attestation entirely.  A
    missing or invalid cache transparently falls back to a fresh setup —
    "at the cost of some additional latency for the user".
    """

    def __init__(self, platform: FlickerPlatform, expected_pal: Optional[SSHPasswordPAL] = None,
                 reuse_channel: bool = False) -> None:
        self.platform = platform
        self._channel_client = SecureChannelClient(
            platform.verifier(), platform.machine.rng.fork("ssh-client")
        )
        self._rng = platform.machine.rng.fork("ssh-client-nonce")
        self.expected_pal = expected_pal
        self.reuse_channel = reuse_channel
        self._cached_channel: Optional[EstablishedChannel] = None

    def forget_channel(self) -> None:
        """Drop the cached channel (e.g. the user moved to a new client
        machine, the paper's re-keying trigger)."""
        self._cached_channel = None

    def connect_and_login(self, server: SSHServer, username: str, password: bytes) -> LoginOutcome:
        """Run the full Figure 7 exchange against ``server``."""
        machine = self.platform.machine
        network = self.platform.network
        host = machine.profile.host
        start = machine.clock.now()

        # Transport setup + client challenge for the setup attestation.
        machine.clock.advance(host.ssh_transport_ms)

        if self.reuse_channel and self._cached_channel is not None:
            channel: EstablishedChannel = self._cached_channel
        else:
            client_nonce = self._rng.bytes(20)
            network.send("ssh-client", "sshd", client_nonce)

            session, attestation = server.run_setup_session(client_nonce)
            network.send("sshd", "ssh-client", attestation)

            # The client accepts K_PAL only if the attestation proves it
            # came from the expected PAL under Flicker.
            channel = self._channel_client.accept(
                attestation, session.image, client_nonce
            )
            if self.reuse_channel:
                self._cached_channel = channel
        prompt_time = machine.clock.elapsed_since(start)

        # Server sends its login nonce; the user types the password.
        entry_start = machine.clock.now()
        server_nonce = server._fresh_nonce()
        network.send("sshd", "ssh-client", server_nonce)
        message = len(password).to_bytes(2, "big") + password + server_nonce
        ciphertext = self._channel_client.encrypt(channel, message)
        network.send("ssh-client", "sshd", ciphertext)

        ok = server.run_login_session(
            username, ciphertext, channel.sdata.encode(), server_nonce
        )
        network.send("sshd", "ssh-client", b"auth-ok" if ok else b"auth-fail")
        return LoginOutcome(
            authenticated=ok,
            time_to_prompt_ms=prompt_time,
            time_after_entry_ms=machine.clock.elapsed_since(entry_start),
        )
