"""Distributed computing with integrity-protected state (paper §6.2).

A BOINC-style project distributes work units to untrusted hosts.  The
classic defence against cheating clients is k-way replication — wasteful
and still probabilistic.  With Flicker, the client computes inside
sessions whose multi-session state is integrity-protected: the first
invocation generates a 160-bit HMAC key from TPM randomness and seals it
to itself; every later invocation unseals the key, checks the MAC on the
incoming state, works for a bounded slice (so the OS gets the machine
back between slices), and MACs the outgoing state.  The final slice
extends the result into PCR 17 so the server can verify an attestation
instead of replicating.

The demonstration workload is the paper's: naive trial-division factoring
of a large number, split into divisor ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.attestation import Attestation
from repro.core.pal import PAL, PALContext
from repro.core.session import FlickerPlatform, SessionResult
from repro.crypto.hmac import constant_time_equal, hmac_sha1
from repro.errors import PALRuntimeError
from repro.tpm.structures import SealedBlob

#: Commands in the PAL input framing.
_CMD_INIT = 0
_CMD_WORK = 1

#: The modelled per-divisor cost: §7.5's workload tests 1,500,000 divisors
#: per multi-second session, so one divisor costs a fraction of a
#: microsecond; we model 0.0005 ms per 1000 divisors at full rate and let
#: callers specify the slice duration directly instead.
DIVISORS_PER_MS = 1500.0 / 8.3  # ≈181 divisors per ms (from §7.5's figures)


@dataclass
class FactoringWorkUnit:
    """One server-issued unit: test divisors of ``n`` in [start, end)."""

    unit_id: int
    n: int
    start: int
    end: int


@dataclass
class FactoringState:
    """The PAL's inter-session state for one work unit."""

    unit_id: int
    n: int
    cursor: int
    end: int
    found: Tuple[int, ...] = ()

    def encode(self) -> bytes:
        payload = (
            self.unit_id.to_bytes(4, "big")
            + self.n.to_bytes(32, "big")
            + self.cursor.to_bytes(16, "big")
            + self.end.to_bytes(16, "big")
            + len(self.found).to_bytes(2, "big")
        )
        for divisor in self.found:
            payload += divisor.to_bytes(16, "big")
        return payload

    @classmethod
    def decode(cls, data: bytes) -> "FactoringState":
        unit_id = int.from_bytes(data[:4], "big")
        n = int.from_bytes(data[4:36], "big")
        cursor = int.from_bytes(data[36:52], "big")
        end = int.from_bytes(data[52:68], "big")
        count = int.from_bytes(data[68:70], "big")
        found = []
        off = 70
        for _ in range(count):
            found.append(int.from_bytes(data[off : off + 16], "big"))
            off += 16
        return cls(unit_id=unit_id, n=n, cursor=cursor, end=end, found=tuple(found))

    @property
    def done(self) -> bool:
        """Whether the whole divisor range has been covered."""
        return self.cursor >= self.end


def _encode_init(state: FactoringState) -> bytes:
    return bytes([_CMD_INIT]) + state.encode()


def _encode_work(sealed_key: SealedBlob, state: bytes, mac: bytes, slice_ms: float) -> bytes:
    key_blob = sealed_key.encode()
    return (
        bytes([_CMD_WORK])
        + int(slice_ms * 1000).to_bytes(8, "big")
        + len(key_blob).to_bytes(4, "big") + key_blob
        + len(state).to_bytes(4, "big") + state
        + mac
    )


class DistributedPAL(PAL):
    """The Flicker-protected BOINC computation core."""

    name = "boinc-factoring"
    modules = ("tpm_utils", "crypto")

    def run(self, ctx: PALContext) -> None:
        if not ctx.inputs:
            raise PALRuntimeError("distributed PAL requires a command input")
        command = ctx.inputs[0]
        if command == _CMD_INIT:
            self._run_init(ctx)
        elif command == _CMD_WORK:
            self._run_work(ctx)
        else:
            raise PALRuntimeError(f"unknown distributed-PAL command {command}")

    # -- first invocation: key generation (§6.2) --------------------------------

    def _run_init(self, ctx: PALContext) -> None:
        state = FactoringState.decode(ctx.inputs[1:])
        hmac_key = ctx.tpm.get_random(20)  # the 160-bit symmetric key
        sealed = ctx.tpm.seal_to_pal(hmac_key, ctx.self_pcr17)
        state_bytes = state.encode()
        mac = ctx.crypto.hmac_sha1(hmac_key, state_bytes)
        sealed_blob = sealed.encode()
        ctx.write_output(
            len(sealed_blob).to_bytes(4, "big") + sealed_blob
            + len(state_bytes).to_bytes(4, "big") + state_bytes
            + mac
        )

    # -- subsequent invocations: verified work slices --------------------------------

    def _run_work(self, ctx: PALContext) -> None:
        payload = ctx.inputs[1:]
        slice_ms = int.from_bytes(payload[:8], "big") / 1000.0
        off = 8
        key_len = int.from_bytes(payload[off : off + 4], "big")
        sealed = SealedBlob.decode(payload[off + 4 : off + 4 + key_len])
        off += 4 + key_len
        state_len = int.from_bytes(payload[off : off + 4], "big")
        state_bytes = payload[off + 4 : off + 4 + state_len]
        off += 4 + state_len
        mac = payload[off : off + 20]

        hmac_key = ctx.tpm.unseal(sealed)
        if not constant_time_equal(ctx.crypto.hmac_sha1(hmac_key, state_bytes), mac):
            raise PALRuntimeError("state MAC verification failed (tampered state)")

        state = FactoringState.decode(state_bytes)
        divisor_budget = max(1, int(slice_ms * DIVISORS_PER_MS))
        state = self._factor_slice(state, divisor_budget)
        ctx.charge(slice_ms, "factoring-work")

        new_state = state.encode()
        new_mac = ctx.crypto.hmac_sha1(hmac_key, new_state)
        if state.done:
            # Final slice: bind the result into PCR 17 for attestation.
            result_digest = ctx.crypto.sha1(new_state)
            ctx.tpm.pcr_extend(result_digest)
        ctx.write_output(
            len(new_state).to_bytes(4, "big") + new_state + new_mac
            + (b"\x01" if state.done else b"\x00")
        )

    @staticmethod
    def _factor_slice(state: FactoringState, divisor_budget: int) -> FactoringState:
        """Test up to ``divisor_budget`` candidate divisors (functionally
        exact; the *time* is charged by the caller from the slice length)."""
        cursor = max(state.cursor, 2)
        end = min(state.end, cursor + divisor_budget)
        found = list(state.found)
        # No divisor larger than n can divide n, so that region of the
        # range is covered without per-candidate work.
        trial_end = min(end, state.n + 1)
        while cursor < trial_end:
            if state.n % cursor == 0 and cursor not in found:
                found.append(cursor)
            cursor += 1
        cursor = max(cursor, end) if end > state.n else cursor
        return FactoringState(
            unit_id=state.unit_id,
            n=state.n,
            cursor=cursor,
            end=state.end,
            found=tuple(found),
        )


@dataclass
class ClientProgress:
    """A client's bookkeeping between sessions (held by untrusted code)."""

    sealed_key: SealedBlob
    state_bytes: bytes
    mac: bytes
    done: bool = False

    @property
    def state(self) -> FactoringState:
        """Decoded view of the (MAC-protected) state."""
        return FactoringState.decode(self.state_bytes)


class BOINCClient:
    """The modified BOINC client: runs work units inside Flicker sessions."""

    def __init__(self, platform: FlickerPlatform, pal: Optional[DistributedPAL] = None) -> None:
        self.platform = platform
        self.pal = pal or DistributedPAL()

    def start_unit(self, unit: FactoringWorkUnit,
                   tenant: Optional[str] = None) -> ClientProgress:
        """First invocation: key generation + sealed state bootstrap.

        Pass ``tenant`` to run the session on behalf of a vTPM tenant
        (multi-tenant hosts; see :mod:`repro.vtpm`)."""
        state = FactoringState(
            unit_id=unit.unit_id, n=unit.n, cursor=unit.start, end=unit.end
        )
        result = self.platform.execute_pal(self.pal, inputs=_encode_init(state),
                                           tenant=tenant)
        return self._parse_init_output(result)

    @staticmethod
    def _parse_init_output(result: SessionResult) -> ClientProgress:
        data = result.outputs
        key_len = int.from_bytes(data[:4], "big")
        sealed = SealedBlob.decode(data[4 : 4 + key_len])
        off = 4 + key_len
        state_len = int.from_bytes(data[off : off + 4], "big")
        state_bytes = data[off + 4 : off + 4 + state_len]
        mac = data[off + 4 + state_len : off + 4 + state_len + 20]
        return ClientProgress(sealed_key=sealed, state_bytes=state_bytes, mac=mac)

    def work_slice(
        self,
        progress: ClientProgress,
        slice_ms: float,
        nonce: bytes = b"\x00" * 20,
        tenant: Optional[str] = None,
    ) -> Tuple[ClientProgress, SessionResult]:
        """One bounded Flicker session of application work."""
        inputs = _encode_work(progress.sealed_key, progress.state_bytes, progress.mac, slice_ms)
        result = self.platform.execute_pal(self.pal, inputs=inputs, nonce=nonce,
                                           tenant=tenant)
        data = result.outputs
        state_len = int.from_bytes(data[:4], "big")
        state_bytes = data[4 : 4 + state_len]
        mac = data[4 + state_len : 24 + state_len]
        done = data[24 + state_len : 25 + state_len] == b"\x01"
        return (
            ClientProgress(
                sealed_key=progress.sealed_key,
                state_bytes=state_bytes,
                mac=mac,
                done=done,
            ),
            result,
        )

    def run_unit(
        self,
        unit: FactoringWorkUnit,
        slice_ms: float,
    ) -> Tuple[ClientProgress, SessionResult]:
        """Run a unit to completion in ``slice_ms`` chunks; returns the
        final progress and the *last* session result (whose PCR-17 chain
        contains the result extend)."""
        progress = self.start_unit(unit)
        last_result: Optional[SessionResult] = None
        while not progress.done:
            progress, last_result = self.work_slice(progress, slice_ms)
        assert last_result is not None
        return progress, last_result


class BOINCServer:
    """The project server: issues units, verifies attested results."""

    def __init__(self, n: int, range_per_unit: int = 2000) -> None:
        self.n = n
        self.range_per_unit = range_per_unit
        self._next_unit = 0
        self.verified_results: Dict[int, Tuple[int, ...]] = {}

    def issue_unit(self) -> FactoringWorkUnit:
        """Hand out the next divisor range."""
        start = 2 + self._next_unit * self.range_per_unit
        unit = FactoringWorkUnit(
            unit_id=self._next_unit,
            n=self.n,
            start=start,
            end=start + self.range_per_unit,
        )
        self._next_unit += 1
        return unit

    def accept_result(
        self,
        platform: FlickerPlatform,
        unit: FactoringWorkUnit,
        progress: ClientProgress,
        final_session: SessionResult,
        attestation: Attestation,
        nonce: bytes,
        verifier=None,
    ) -> bool:
        """Verify an attested result; store it if sound.

        The expected PCR-17 chain includes the PAL's final result extend
        (H(final state)), so a forged state cannot verify.  Pass
        ``verifier`` to reuse a held verifier (e.g. a fleet server's
        per-client registry) instead of deriving one from the platform.
        """
        from repro.crypto.sha1 import sha1

        if verifier is None:
            verifier = platform.verifier()
        report = verifier.verify(
            attestation,
            final_session.image,
            nonce,
            pal_extends=[sha1(progress.state_bytes)],
        )
        if not report.ok:
            return False
        state = progress.state
        if state.unit_id != unit.unit_id or not state.done:
            return False
        self.verified_results[unit.unit_id] = state.found
        return True


# ---------------------------------------------------------------------------
# The replication baseline (Figure 8)
# ---------------------------------------------------------------------------

@dataclass
class ReplicationScheme:
    """k-way redundant execution on untrusted clients."""

    replicas: int

    @property
    def efficiency(self) -> float:
        """Useful work fraction: one unit of progress per ``k`` executions."""
        return 1.0 / self.replicas

    def majority_result(self, results: List[Tuple[int, ...]]) -> Optional[Tuple[int, ...]]:
        """The result reported by a strict majority, or ``None``."""
        tally: Dict[Tuple[int, ...], int] = {}
        for result in results:
            tally[result] = tally.get(result, 0) + 1
        best, votes = max(tally.items(), key=lambda item: item[1])
        return best if votes * 2 > len(results) else None


@dataclass
class ProjectReport:
    """Outcome of running a whole project across a client fleet."""

    units_issued: int
    units_accepted: int
    units_rejected: int
    #: Total virtual compute time spent across all clients (ms).
    total_compute_ms: float
    #: Useful (application-work) share of that time.
    useful_ms: float

    @property
    def efficiency(self) -> float:
        """Useful-work fraction across the fleet."""
        return self.useful_ms / self.total_compute_ms if self.total_compute_ms else 0.0


class BOINCProject:
    """Orchestrates a whole distributed project over a fleet of
    Flicker-capable clients — the deployment the paper's §6.2 envisions.

    Each client runs on its own simulated machine (its own TPM and AIK);
    the server verifies every returned result against that client's
    attestation before accepting it.
    """

    def __init__(self, n: int, range_per_unit: int = 400) -> None:
        self.server = BOINCServer(n=n, range_per_unit=range_per_unit)
        self._nonce_counter = 0

    def _fresh_nonce(self) -> bytes:
        from repro.crypto.sha1 import sha1

        self._nonce_counter += 1
        return sha1(b"boinc-server" + self._nonce_counter.to_bytes(8, "big"))

    def run(self, platforms: List["FlickerPlatform"], units_per_client: int,
            slice_ms: float) -> ProjectReport:
        """Issue units round-robin, run them, verify every attestation."""
        accepted = rejected = issued = 0
        total_compute = useful = 0.0
        for platform in platforms:
            client = BOINCClient(platform)
            for _ in range(units_per_client):
                unit = self.server.issue_unit()
                issued += 1
                nonce = self._fresh_nonce()
                clock = platform.machine.clock
                before = clock.now()
                progress = client.start_unit(unit)
                result = None
                while not progress.done:
                    progress, result = client.work_slice(progress, slice_ms, nonce=nonce)
                elapsed = clock.now() - before
                total_compute += elapsed
                attestation = platform.attest(nonce, result)
                if self.server.accept_result(
                    platform, unit, progress, result, attestation, nonce
                ):
                    accepted += 1
                    # Useful time: the work slices themselves.
                    useful += sum(
                        e.detail["ms"]
                        for e in platform.machine.trace.events(kind="work")
                        if e.detail["label"] == "factoring-work"
                        and e.time_ms > before
                    )
                else:
                    rejected += 1
        return ProjectReport(
            units_issued=issued,
            units_accepted=accepted,
            units_rejected=rejected,
            total_compute_ms=total_compute,
            useful_ms=useful,
        )


# ---------------------------------------------------------------------------
# The fleet deployment: many untrusted hosts, one verifying server (§6.2/§7.5)
# ---------------------------------------------------------------------------

#: Server-side cost of verifying one attested result: the quote signature
#: and the AIK certificate are each one RSA public-key operation; the
#: event-log replay is a handful of SHA-1s, charged as one more op's worth.
VERIFY_PUBLIC_OPS = 3


@dataclass(frozen=True)
class UnitAssignment:
    """Server → client message: run this unit, attest with this nonce."""

    unit: FactoringWorkUnit
    nonce: bytes


@dataclass(frozen=True)
class StopWork:
    """Server → client message: no more units; the client process exits."""


@dataclass(frozen=True)
class UnitResult:
    """Client → server message: a finished, attested work unit."""

    machine_id: str
    unit: FactoringWorkUnit
    progress: ClientProgress
    session: SessionResult
    attestation: Attestation
    nonce: bytes


@dataclass(frozen=True)
class VerifiedUnit:
    """Verification worker → dispatch loop: one checked result."""

    message: UnitResult
    ok: bool


@dataclass
class FleetMachineOutcome:
    """One machine's contribution to a fleet project run."""

    machine_id: str
    units_accepted: int = 0
    units_rejected: int = 0
    sessions: int = 0
    busy_ms: float = 0.0
    idle_ms: float = 0.0
    utilization: float = 0.0
    useful_ms: float = 0.0
    net_bytes: int = 0
    net_messages: int = 0

    def to_dict(self) -> Dict:
        return {
            "machine_id": self.machine_id,
            "units_accepted": self.units_accepted,
            "units_rejected": self.units_rejected,
            "sessions": self.sessions,
            "busy_ms": round(self.busy_ms, 6),
            "idle_ms": round(self.idle_ms, 6),
            "utilization": round(self.utilization, 6),
            "useful_ms": round(self.useful_ms, 6),
            "net_bytes": self.net_bytes,
            "net_messages": self.net_messages,
        }


@dataclass
class FleetProjectReport:
    """Outcome of one concurrent fleet run (the Figure 8 deployment)."""

    fleet_size: int
    units_issued: int
    units_accepted: int
    units_rejected: int
    #: Global virtual time from start to last verified result (ms).
    makespan_ms: float
    #: Flicker sessions across all client machines.
    total_sessions: int
    #: Virtual compute across the fleet (sum of per-machine busy time).
    total_busy_ms: float
    #: Application-work share of that time.
    useful_ms: float
    #: Payload bytes carried by all links, both directions.
    network_bytes: int
    network_messages: int
    per_machine: List[FleetMachineOutcome] = field(default_factory=list)

    @property
    def efficiency(self) -> float:
        """Useful-work fraction across the fleet (Figure 8's metric)."""
        return self.useful_ms / self.total_busy_ms if self.total_busy_ms else 0.0

    @property
    def sessions_per_virtual_second(self) -> float:
        """Aggregate session throughput in *virtual* time — the fleet's
        scaling figure of merit: N concurrent machines complete ~N times
        the sessions of one machine in the same virtual interval."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.total_sessions / (self.makespan_ms / 1000.0)

    def to_dict(self) -> Dict:
        """JSON-friendly, byte-deterministic encoding."""
        return {
            "fleet_size": self.fleet_size,
            "units_issued": self.units_issued,
            "units_accepted": self.units_accepted,
            "units_rejected": self.units_rejected,
            "makespan_ms": round(self.makespan_ms, 6),
            "total_sessions": self.total_sessions,
            "total_busy_ms": round(self.total_busy_ms, 6),
            "useful_ms": round(self.useful_ms, 6),
            "efficiency": round(self.efficiency, 6),
            "sessions_per_virtual_second": round(self.sessions_per_virtual_second, 6),
            "network_bytes": self.network_bytes,
            "network_messages": self.network_messages,
            "per_machine": [m.to_dict() for m in self.per_machine],
        }


class FleetProject:
    """§6.2's distributed project run *concurrently* on a fleet.

    The server host dispatches work units over each client's network
    link, every client machine computes inside its own Flicker sessions
    (interleaved in virtual time with all the others), and the server
    verifies each attestation as it arrives — no barrier between
    clients, exactly one verification per returned unit.

    Usage::

        fleet = FlickerFleet(num_machines=4, seed=2008)
        project = FleetProject(fleet, n=15015 * 1_000_003,
                               units_per_client=2, slice_ms=2000.0)
        report = project.run()

    The run is deterministic: same fleet seed and shape → byte-identical
    :meth:`FleetProjectReport.to_dict` output.
    """

    def __init__(
        self,
        fleet,
        n: int,
        units_per_client: int = 1,
        slice_ms: float = 2000.0,
        range_per_unit: int = 400,
        os_gap_ms: float = 0.0,
        verify_mode: str = "scheduled",
        clients: Optional[int] = None,
    ) -> None:
        if verify_mode not in ("scheduled", "inline"):
            raise ValueError(
                f"verify_mode must be 'scheduled' or 'inline', not {verify_mode!r}"
            )
        if clients is not None and not 0 <= clients <= len(fleet.hosts):
            raise ValueError("clients must be between 0 and the fleet size")
        self.fleet = fleet
        #: How many client machines participate (the first ``clients``
        #: hosts); ``None`` = the whole fleet.  A sparse workload on a
        #: lazily materialized fleet only ever constructs the
        #: participants — the idle majority of a 10k fleet stays unbuilt.
        self.clients = clients
        self.server = BOINCServer(n=n, range_per_unit=range_per_unit)
        self.units_per_client = units_per_client
        self.slice_ms = slice_ms
        #: Virtual time the untrusted OS keeps the machine between slices
        #: (0 = immediately start the next session).
        self.os_gap_ms = os_gap_ms
        #: ``"scheduled"`` (default) runs attestation checks as their own
        #: process on the fleet's verification clock, so dispatch never
        #: waits behind a verify; ``"inline"`` is the legacy behavior —
        #: the server loop verifies each result before dispatching the
        #: next unit, stalling every client behind the verification
        #: backlog (kept for the pinned timing-difference regression).
        self.verify_mode = verify_mode
        self._nonce_counter = 0
        self._assigned: Dict[str, int] = {}
        self._outcomes: Dict[str, FleetMachineOutcome] = {}
        self._finished_at_ms = 0.0

    # -- server side -----------------------------------------------------------

    def _fresh_nonce(self) -> bytes:
        from repro.crypto.sha1 import sha1

        self._nonce_counter += 1
        return sha1(b"fleet-server" + self._nonce_counter.to_bytes(8, "big"))

    def _dispatch(self, host) -> None:
        """Assign the next unit to ``host`` (or tell it to stop)."""
        if self._assigned[host.machine_id] >= self.units_per_client:
            self.fleet.send_to_host(host, StopWork())
            return
        self._assigned[host.machine_id] += 1
        self.fleet.send_to_host(
            host, UnitAssignment(unit=self.server.issue_unit(),
                                 nonce=self._fresh_nonce())
        )

    def _verify(self, message: UnitResult, clock=None) -> bool:
        """Verify one arriving result on ``clock`` (default: the server
        host's dispatch clock — the legacy inline accounting)."""
        clock = clock if clock is not None else self.fleet.server_clock
        host = self.fleet.host(message.machine_id)
        ops_ms = self.fleet.profile.host.rsa1024_public_op_ms * VERIFY_PUBLIC_OPS
        with clock.span("verify-result"):
            clock.advance(ops_ms)
        return self.server.accept_result(
            host.platform, message.unit, message.progress,
            message.session, message.attestation, message.nonce,
            verifier=self.fleet.verifier_for(message.machine_id),
        )

    def _record_outcome(self, verified: VerifiedUnit) -> None:
        outcome = self._outcomes[verified.message.machine_id]
        if verified.ok:
            outcome.units_accepted += 1
        else:
            outcome.units_rejected += 1

    def _participants(self):
        """The participating client hosts (materializing them if the
        fleet is lazy): the first :attr:`clients` hosts, or all."""
        count = self.clients if self.clients is not None else len(self.fleet.hosts)
        return [self.fleet.hosts[i] for i in range(count)]

    @property
    def _expected_units(self) -> int:
        count = self.clients if self.clients is not None else len(self.fleet.hosts)
        return count * self.units_per_client

    def _init_dispatch(self) -> None:
        for host in self._participants():
            self._assigned[host.machine_id] = 0
            self._outcomes[host.machine_id] = FleetMachineOutcome(host.machine_id)
            self._dispatch(host)

    def _server_proc(self):
        """Scheduled mode: forward results to the verification worker
        and dispatch the client's next unit *immediately* — a slow
        verify can no longer stall the whole fleet's dispatch."""
        expected = self._expected_units
        self._init_dispatch()
        verified = 0
        while verified < expected:
            message = yield self.fleet.server_mailbox.receive()
            if isinstance(message, UnitResult):
                self.fleet.post_local(self.fleet.server_clock,
                                      self.fleet.verify_mailbox, message)
                self._dispatch(self.fleet.host(message.machine_id))
            else:
                verified += 1
                self._record_outcome(message)
                self._finished_at_ms = self.fleet.server_clock.now()

    def _verifier_proc(self):
        """The verification worker: one check per returned unit, charged
        to the fleet's dedicated verification clock."""
        expected = self._expected_units
        for _ in range(expected):
            message = yield self.fleet.verify_mailbox.receive()
            ok = self._verify(message, clock=self.fleet.verify_clock)
            self.fleet.post_local(self.fleet.verify_clock,
                                  self.fleet.server_mailbox,
                                  VerifiedUnit(message=message, ok=ok))

    def _server_proc_inline(self):
        """Legacy mode: verify on the dispatch loop, stalling the next
        dispatch behind every verification."""
        expected = self._expected_units
        self._init_dispatch()
        received = 0
        while received < expected:
            message = yield self.fleet.server_mailbox.receive()
            received += 1
            self._record_outcome(VerifiedUnit(message, self._verify(message)))
            self._finished_at_ms = self.fleet.server_clock.now()
            self._dispatch(self.fleet.host(message.machine_id))

    # -- client side -----------------------------------------------------------

    def _client_proc(self, host):
        client = BOINCClient(host.platform)
        while True:
            message = yield host.mailbox.receive()
            if isinstance(message, StopWork):
                return
            progress = client.start_unit(message.unit)
            result = None
            while not progress.done:
                # The OS gets the machine back between slices (§6.2); the
                # yield is the scheduling point that lets every other
                # machine's earlier events run first.
                yield self.os_gap_ms
                progress, result = client.work_slice(
                    progress, self.slice_ms, nonce=message.nonce
                )
            attestation = host.platform.attest(message.nonce, result)
            self.fleet.send_to_server(host, UnitResult(
                machine_id=host.machine_id,
                unit=message.unit,
                progress=progress,
                session=result,
                attestation=attestation,
                nonce=message.nonce,
            ))

    # -- orchestration ---------------------------------------------------------

    def run(self) -> FleetProjectReport:
        """Spawn every process, drive the schedule dry, and report."""
        for host in self._participants():
            self.fleet.spawn(host, self._client_proc(host))
        if self.verify_mode == "scheduled":
            self.fleet.spawn_server(self._server_proc())
            self.fleet.spawn_verifier(self._verifier_proc())
        else:
            self.fleet.spawn_server(self._server_proc_inline())
        self.fleet.run()
        return self._build_report()

    def _useful_ms(self, host) -> float:
        return sum(
            e.detail["ms"]
            for e in host.machine.trace.events(source="cpu", kind="work")
            if e.detail.get("label") == "factoring-work"
        )

    def _build_report(self) -> FleetProjectReport:
        per_machine: List[FleetMachineOutcome] = []
        # The last machine_reports row is the server aggregate; the rest
        # are the clients, in index order.  Non-participants never ran
        # (and, on a lazy fleet, were never built): their rows are zeros
        # and their traces need not exist to know useful_ms is 0.
        for stats in self.fleet.machine_reports()[:-1]:
            outcome = self._outcomes.get(
                stats.machine_id, FleetMachineOutcome(stats.machine_id)
            )
            outcome.sessions = stats.sessions
            outcome.busy_ms = stats.busy_ms
            outcome.idle_ms = stats.idle_ms
            outcome.utilization = stats.utilization
            if stats.machine_id in self._assigned:
                outcome.useful_ms = self._useful_ms(
                    self.fleet.host(stats.machine_id))
            outcome.net_bytes = stats.net_bytes
            outcome.net_messages = stats.net_messages
            per_machine.append(outcome)
        return FleetProjectReport(
            fleet_size=len(self.fleet.hosts),
            units_issued=self.server._next_unit,
            units_accepted=sum(m.units_accepted for m in per_machine),
            units_rejected=sum(m.units_rejected for m in per_machine),
            makespan_ms=self._finished_at_ms,
            total_sessions=sum(m.sessions for m in per_machine),
            total_busy_ms=sum(m.busy_ms for m in per_machine),
            useful_ms=sum(m.useful_ms for m in per_machine),
            network_bytes=sum(m.net_bytes for m in per_machine),
            network_messages=sum(m.net_messages for m in per_machine),
            per_machine=per_machine,
        )


def flicker_efficiency(user_latency_ms: float, overhead_ms: float) -> float:
    """Figure 8's Flicker curve: with a per-session overhead of
    ``overhead_ms`` (SKINIT + Unseal + …), a session the user perceives as
    ``user_latency_ms`` long spends the remainder on useful work."""
    if user_latency_ms <= 0:
        return 0.0
    return max(0.0, (user_latency_ms - overhead_ms) / user_latency_ms)
