"""Flicker applications (paper §6).

Four applications demonstrate the three state classes of the paper's
evaluation:

* :mod:`repro.apps.rootkit_detector` — stateless (§6.1): a verifiable
  kernel rootkit detector queried by a remote administrator.
* :mod:`repro.apps.distributed` — integrity-protected state (§6.2): a
  BOINC-style distributed-computing client whose multi-session state is
  MACed under a TPM-sealed key, plus the redundancy baseline it replaces.
* :mod:`repro.apps.ssh_auth` — secret and integrity-protected state
  (§6.3.1): SSH password authentication where the cleartext password
  exists on the server only inside a Flicker session.
* :mod:`repro.apps.ca` — secret and integrity-protected state (§6.3.2): a
  certificate authority whose signing key only ever exists in a PAL.
"""

from repro.apps.rootkit_detector import (
    RootkitDetectorPAL,
    RemoteAdministrator,
    DetectionReport,
    VPNGateway,
    AccessDecision,
    describe_kernel_regions,
    simulate_kernel_build,
)
from repro.apps.distributed import (
    BOINCServer,
    BOINCClient,
    BOINCProject,
    ProjectReport,
    DistributedPAL,
    FactoringWorkUnit,
    FleetMachineOutcome,
    FleetProject,
    FleetProjectReport,
    ReplicationScheme,
    StopWork,
    UnitAssignment,
    UnitResult,
    flicker_efficiency,
)
from repro.apps.ssh_auth import SSHPasswordPAL, SSHServer, SSHClient, PasswdEntry
from repro.apps.ca import (
    CertificateAuthorityPAL,
    CertificateAuthority,
    CertificateSigningRequest,
    Certificate,
    SigningPolicy,
)

__all__ = [
    "RootkitDetectorPAL",
    "RemoteAdministrator",
    "DetectionReport",
    "VPNGateway",
    "AccessDecision",
    "describe_kernel_regions",
    "simulate_kernel_build",
    "BOINCServer",
    "BOINCClient",
    "BOINCProject",
    "ProjectReport",
    "DistributedPAL",
    "FactoringWorkUnit",
    "FleetMachineOutcome",
    "FleetProject",
    "FleetProjectReport",
    "ReplicationScheme",
    "StopWork",
    "UnitAssignment",
    "UnitResult",
    "flicker_efficiency",
    "SSHPasswordPAL",
    "SSHServer",
    "SSHClient",
    "PasswdEntry",
    "CertificateAuthorityPAL",
    "CertificateAuthority",
    "CertificateSigningRequest",
    "Certificate",
    "SigningPolicy",
]
