"""Flicker-protected Certificate Authority (paper §6.3.2).

The CA's private signing key is generated inside a PAL, sealed to that
PAL, and only ever exists in cleartext during a Flicker session.  A
compromised server OS can submit malicious CSRs — which the PAL's access
control policy filters and its certificate database logs — but it can
never steal the key, so a discovered compromise costs certificate
revocations, not a CA key rollover.

Two PAL commands mirror the paper's two sessions:

* **keygen** — generate a 1024-bit RSA keypair from TPM randomness, seal
  the private key and an empty certificate database under PCR 17, output
  the public key (plus the sealed blobs for untrusted storage).
* **sign** — input a CSR, the sealed key, the sealed database, and the
  policy; unseal, enforce the policy, sign, append to the database,
  reseal it, and output the certificate and the new sealed database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.pal import PAL, PALContext
from repro.core.session import FlickerPlatform, SessionResult
from repro.crypto.pkcs1 import pkcs1_verify_sha1
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.errors import PALRuntimeError
from repro.tpm.structures import SealedBlob

_CMD_KEYGEN = 0
_CMD_SIGN = 1
_CMD_AUDIT = 2
_CMD_REVOKE = 3


@dataclass(frozen=True)
class CertificateSigningRequest:
    """A CSR: the subject's name and public key."""

    subject: str
    public_key: RSAPublicKey

    def encode(self) -> bytes:
        name = self.subject.encode("utf-8")
        key = self.public_key.encode()
        return len(name).to_bytes(2, "big") + name + len(key).to_bytes(4, "big") + key

    @classmethod
    def decode(cls, data: bytes) -> "CertificateSigningRequest":
        name_len = int.from_bytes(data[:2], "big")
        subject = data[2 : 2 + name_len].decode("utf-8")
        off = 2 + name_len
        key_len = int.from_bytes(data[off : off + 4], "big")
        public_key = RSAPublicKey.decode(data[off + 4 : off + 4 + key_len])
        return cls(subject=subject, public_key=public_key)


@dataclass(frozen=True)
class Certificate:
    """A CA-issued certificate."""

    serial: int
    subject: str
    public_key: RSAPublicKey
    issuer_key: RSAPublicKey
    signature: bytes

    def tbs_bytes(self) -> bytes:
        """The to-be-signed encoding."""
        return (
            b"FLICKER-CERT"
            + self.serial.to_bytes(8, "big")
            + len(self.subject.encode("utf-8")).to_bytes(2, "big")
            + self.subject.encode("utf-8")
            + self.public_key.encode()
        )

    def verify(self, issuer_key: RSAPublicKey) -> bool:
        """Check issuer identity and signature."""
        if self.issuer_key != issuer_key:
            return False
        return pkcs1_verify_sha1(issuer_key, self.tbs_bytes(), self.signature)

    def encode(self) -> bytes:
        tbs = self.tbs_bytes()
        issuer = self.issuer_key.encode()
        return (
            len(tbs).to_bytes(4, "big") + tbs
            + len(issuer).to_bytes(4, "big") + issuer
            + len(self.signature).to_bytes(4, "big") + self.signature
        )

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        tbs_len = int.from_bytes(data[:4], "big")
        tbs = data[4 : 4 + tbs_len]
        off = 4 + tbs_len
        issuer_len = int.from_bytes(data[off : off + 4], "big")
        issuer_key = RSAPublicKey.decode(data[off + 4 : off + 4 + issuer_len])
        off += 4 + issuer_len
        sig_len = int.from_bytes(data[off : off + 4], "big")
        signature = data[off + 4 : off + 4 + sig_len]
        # Parse the TBS fields back out.
        serial = int.from_bytes(tbs[12:20], "big")
        name_len = int.from_bytes(tbs[20:22], "big")
        subject = tbs[22 : 22 + name_len].decode("utf-8")
        public_key = RSAPublicKey.decode(tbs[22 + name_len :])
        return cls(
            serial=serial,
            subject=subject,
            public_key=public_key,
            issuer_key=issuer_key,
            signature=signature,
        )


@dataclass(frozen=True)
class SigningPolicy:
    """The administrator-supplied access-control policy on issuance."""

    allowed_suffixes: Tuple[str, ...] = (".example.com",)
    denied_subjects: Tuple[str, ...] = ()
    max_certificates: int = 1000

    def permits(self, subject: str, issued_so_far: int) -> bool:
        """Policy decision for one CSR."""
        if issued_so_far >= self.max_certificates:
            return False
        if subject in self.denied_subjects:
            return False
        return any(subject.endswith(suffix) for suffix in self.allowed_suffixes)

    def encode(self) -> bytes:
        allowed = "\x00".join(self.allowed_suffixes).encode("utf-8")
        denied = "\x00".join(self.denied_subjects).encode("utf-8")
        return (
            len(allowed).to_bytes(2, "big") + allowed
            + len(denied).to_bytes(2, "big") + denied
            + self.max_certificates.to_bytes(4, "big")
        )

    @classmethod
    def decode(cls, data: bytes) -> "SigningPolicy":
        allowed_len = int.from_bytes(data[:2], "big")
        allowed = data[2 : 2 + allowed_len].decode("utf-8")
        off = 2 + allowed_len
        denied_len = int.from_bytes(data[off : off + 2], "big")
        denied = data[off + 2 : off + 2 + denied_len].decode("utf-8")
        off += 2 + denied_len
        max_certs = int.from_bytes(data[off : off + 4], "big")
        return cls(
            allowed_suffixes=tuple(s for s in allowed.split("\x00") if s),
            denied_subjects=tuple(s for s in denied.split("\x00") if s),
            max_certificates=max_certs,
        )


def _encode_db(serial: int, log: List[str]) -> bytes:
    entries = "\x00".join(log).encode("utf-8")
    return serial.to_bytes(8, "big") + len(entries).to_bytes(4, "big") + entries


def _decode_db(data: bytes) -> Tuple[int, List[str]]:
    serial = int.from_bytes(data[:8], "big")
    entries_len = int.from_bytes(data[8:12], "big")
    entries = data[12 : 12 + entries_len].decode("utf-8")
    return serial, [e for e in entries.split("\x00") if e]


class CertificateAuthorityPAL(PAL):
    """The CA's Flicker-protected core."""

    name = "flicker-ca"
    modules = ("secure_channel",)

    def run(self, ctx: PALContext) -> None:
        if not ctx.inputs:
            raise PALRuntimeError("CA PAL requires a command input")
        command = ctx.inputs[0]
        if command == _CMD_KEYGEN:
            self._keygen(ctx)
        elif command == _CMD_SIGN:
            self._sign(ctx)
        elif command == _CMD_AUDIT:
            self._audit(ctx)
        elif command == _CMD_REVOKE:
            self._revoke(ctx)
        else:
            raise PALRuntimeError(f"unknown CA-PAL command {command}")

    @staticmethod
    def _encode_state(private: RSAPrivateKey, serial: int, log: List[str]) -> bytes:
        key = private.encode()
        db = _encode_db(serial, log)
        return len(key).to_bytes(4, "big") + key + db

    @staticmethod
    def _decode_state(state: bytes):
        key_len = int.from_bytes(state[:4], "big")
        private = RSAPrivateKey.decode(state[4 : 4 + key_len])
        serial, log = _decode_db(state[4 + key_len :])
        return private, serial, log

    def _keygen(self, ctx: PALContext) -> None:
        keypair = ctx.crypto.rsa_keygen_1024()
        # The private key and the certificate database travel in ONE sealed
        # blob, so a signing session pays for a single Unseal (the paper's
        # §7.4.2 breakdown shows one Unseal dominating the 906 ms total).
        sealed = ctx.tpm.seal_to_pal(
            self._encode_state(keypair.private, 0, []), ctx.self_pcr17
        )
        pub = keypair.public.encode()
        state_blob = sealed.encode()
        ctx.write_output(
            len(pub).to_bytes(4, "big") + pub
            + len(state_blob).to_bytes(4, "big") + state_blob
        )

    def _sign(self, ctx: PALContext) -> None:
        payload = ctx.inputs[1:]
        state_len = int.from_bytes(payload[:4], "big")
        sealed_state = SealedBlob.decode(payload[4 : 4 + state_len])
        off = 4 + state_len
        csr_len = int.from_bytes(payload[off : off + 4], "big")
        csr = CertificateSigningRequest.decode(payload[off + 4 : off + 4 + csr_len])
        off += 4 + csr_len
        policy_len = int.from_bytes(payload[off : off + 4], "big")
        policy = SigningPolicy.decode(payload[off + 4 : off + 4 + policy_len])

        private, serial, log = self._decode_state(ctx.tpm.unseal(sealed_state))

        if not policy.permits(csr.subject, issued_so_far=len(log)):
            # Refusals are logged in the database too (audit trail), and
            # the state is resealed so the refusal is durable.
            log.append(f"DENIED:{csr.subject}")
            new_state = ctx.tpm.seal_to_pal(
                self._encode_state(private, serial, log), ctx.self_pcr17
            ).encode()
            ctx.write_output(b"\x00" + len(new_state).to_bytes(4, "big") + new_state)
            return

        serial += 1
        certificate = Certificate(
            serial=serial,
            subject=csr.subject,
            public_key=csr.public_key,
            issuer_key=private.public_key(),
            signature=b"",
        )
        signature = ctx.crypto.rsa_sign(private, certificate.tbs_bytes())
        certificate = Certificate(
            serial=serial,
            subject=csr.subject,
            public_key=csr.public_key,
            issuer_key=private.public_key(),
            signature=signature,
        )
        log.append(f"ISSUED:{serial}:{csr.subject}")
        new_state = ctx.tpm.seal_to_pal(
            self._encode_state(private, serial, log), ctx.self_pcr17
        ).encode()
        cert_blob = certificate.encode()
        ctx.write_output(
            b"\x01"
            + len(cert_blob).to_bytes(4, "big") + cert_blob
            + len(new_state).to_bytes(4, "big") + new_state
        )


    def _audit(self, ctx: PALContext) -> None:
        """Dump the in-PAL decision log (§6.3.2: the PAL "can log those
        creations" — and this is how the administrator reads the log with
        integrity: the log travels inside the sealed state)."""
        payload = ctx.inputs[1:]
        state_len = int.from_bytes(payload[:4], "big")
        sealed_state = SealedBlob.decode(payload[4 : 4 + state_len])
        _, _, log = self._decode_state(ctx.tpm.unseal(sealed_state))
        entries = "\x00".join(log).encode("utf-8")
        ctx.write_output(entries[:4000])  # the output page bounds the dump

    def _revoke(self, ctx: PALContext) -> None:
        """Revoke an issued certificate by serial (§6.3.2: "any
        certificates incorrectly created can be revoked").  The revocation
        is durable — it lives in the resealed state — and idempotent."""
        payload = ctx.inputs[1:]
        state_len = int.from_bytes(payload[:4], "big")
        sealed_state = SealedBlob.decode(payload[4 : 4 + state_len])
        serial = int.from_bytes(payload[4 + state_len : 12 + state_len], "big")

        private, max_serial, log = self._decode_state(ctx.tpm.unseal(sealed_state))
        issued = any(entry.startswith(f"ISSUED:{serial}:") for entry in log)
        already = f"REVOKED:{serial}" in log
        if issued and not already:
            log.append(f"REVOKED:{serial}")
            status = b"\x01"
        elif already:
            status = b"\x02"
        else:
            status = b"\x00"  # never issued
        new_state = ctx.tpm.seal_to_pal(
            self._encode_state(private, max_serial, log), ctx.self_pcr17
        ).encode()
        ctx.write_output(status + len(new_state).to_bytes(4, "big") + new_state)


class CertificateAuthority:
    """The untrusted-side CA service wrapping the PAL sessions."""

    def __init__(self, platform: FlickerPlatform, policy: Optional[SigningPolicy] = None,
                 pal: Optional[CertificateAuthorityPAL] = None) -> None:
        self.platform = platform
        self.policy = policy or SigningPolicy()
        self.pal = pal or CertificateAuthorityPAL()
        self.public_key: Optional[RSAPublicKey] = None
        self._sealed_state: Optional[bytes] = None
        self.last_session: Optional[SessionResult] = None

    def initialize(self) -> RSAPublicKey:
        """Run the keygen session; publishes the CA public key."""
        session = self.platform.execute_pal(self.pal, inputs=bytes([_CMD_KEYGEN]))
        self.last_session = session
        data = session.outputs
        pub_len = int.from_bytes(data[:4], "big")
        self.public_key = RSAPublicKey.decode(data[4 : 4 + pub_len])
        off = 4 + pub_len
        state_len = int.from_bytes(data[off : off + 4], "big")
        self._sealed_state = data[off + 4 : off + 4 + state_len]
        return self.public_key

    def sign(self, csr: CertificateSigningRequest) -> Optional[Certificate]:
        """Run one signing session; returns the certificate, or ``None``
        when the in-PAL policy refused the CSR."""
        if self._sealed_state is None:
            raise RuntimeError("CA not initialized")
        csr_blob = csr.encode()
        policy_blob = self.policy.encode()
        inputs = (
            bytes([_CMD_SIGN])
            + len(self._sealed_state).to_bytes(4, "big") + self._sealed_state
            + len(csr_blob).to_bytes(4, "big") + csr_blob
            + len(policy_blob).to_bytes(4, "big") + policy_blob
        )
        session = self.platform.execute_pal(self.pal, inputs=inputs)
        self.last_session = session
        data = session.outputs
        issued = data[0] == 1
        off = 1
        if issued:
            cert_len = int.from_bytes(data[off : off + 4], "big")
            certificate = Certificate.decode(data[off + 4 : off + 4 + cert_len])
            off += 4 + cert_len
        else:
            certificate = None
        state_len = int.from_bytes(data[off : off + 4], "big")
        self._sealed_state = data[off + 4 : off + 4 + state_len]
        return certificate

    def audit_log(self) -> List[str]:
        """Read the in-PAL decision log (one audit session)."""
        if self._sealed_state is None:
            raise RuntimeError("CA not initialized")
        inputs = (
            bytes([_CMD_AUDIT])
            + len(self._sealed_state).to_bytes(4, "big") + self._sealed_state
        )
        session = self.platform.execute_pal(self.pal, inputs=inputs)
        self.last_session = session
        return [e for e in session.outputs.decode("utf-8").split("\x00") if e]

    def revoke(self, serial: int) -> bool:
        """Revoke an issued certificate (one revocation session); returns
        whether the revocation took effect (False if never issued)."""
        if self._sealed_state is None:
            raise RuntimeError("CA not initialized")
        inputs = (
            bytes([_CMD_REVOKE])
            + len(self._sealed_state).to_bytes(4, "big") + self._sealed_state
            + serial.to_bytes(8, "big")
        )
        session = self.platform.execute_pal(self.pal, inputs=inputs)
        self.last_session = session
        status = session.outputs[0]
        state_len = int.from_bytes(session.outputs[1:5], "big")
        self._sealed_state = session.outputs[5 : 5 + state_len]
        return status in (1, 2)

    def revoked_serials(self) -> List[int]:
        """The CRL, derived from the audited decision log."""
        return [
            int(entry.split(":")[1])
            for entry in self.audit_log()
            if entry.startswith("REVOKED:")
        ]

    def certificate_valid(self, certificate: Certificate) -> bool:
        """Full relying-party check: signature plus revocation status."""
        if self.public_key is None:
            raise RuntimeError("CA not initialized")
        if not certificate.verify(self.public_key):
            return False
        return certificate.serial not in self.revoked_serials()
