"""Verifiable kernel rootkit detection (paper §6.1).

A remote administrator wants assurance that a machine's kernel is
unmodified before, say, admitting it to the corporate VPN.  The detector
runs as a PAL: it hashes the kernel text segment, the system-call table,
and every loaded kernel module, extends the resulting digest into PCR 17,
and outputs it.  The administrator gets an attestation proving that *this*
detector ran with Flicker protections and that the returned hash is the
one it computed — so a compromised OS can neither skip the check nor lie
about the result.

The detector needs the run of the machine's physical memory, so it links
no OS-Protection module (this is the one application where the PAL must
see everything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.attestation import Attestation
from repro.core.pal import PAL, PALContext
from repro.core.session import FlickerPlatform, SessionResult
from repro.crypto.sha1 import SHA1, sha1
from repro.errors import PALRuntimeError
from repro.osim.kernel import UntrustedKernel


def describe_kernel_regions(kernel: UntrustedKernel) -> bytes:
    """Serialize the kernel's measured regions as detector input.

    Format per region: 8-byte address, 4-byte length; a trailing 8-byte
    field carries the *modelled* measured size in KB (scaled by 1024) so
    the PAL can charge honest hash time for the full-size kernel the
    simulated one stands in for.
    """
    regions = kernel.measured_regions()
    payload = len(regions).to_bytes(2, "big")
    for _, addr, length in regions:
        payload += addr.to_bytes(8, "big") + length.to_bytes(4, "big")
    modelled = int(kernel.measured_size_kb() * 1024)
    payload += modelled.to_bytes(8, "big")
    return payload


def _parse_regions(payload: bytes) -> Tuple[List[Tuple[int, int]], int]:
    count = int.from_bytes(payload[:2], "big")
    regions = []
    off = 2
    for _ in range(count):
        addr = int.from_bytes(payload[off : off + 8], "big")
        length = int.from_bytes(payload[off + 8 : off + 12], "big")
        regions.append((addr, length))
        off += 12
    modelled_bytes = int.from_bytes(payload[off : off + 8], "big")
    return regions, modelled_bytes


class RootkitDetectorPAL(PAL):
    """Hash kernel text + syscall table + modules; extend and output it."""

    name = "rootkit-detector"
    modules = ("tpm_driver", "crypto_sha1")

    def run(self, ctx: PALContext) -> None:
        regions, modelled_bytes = _parse_regions(ctx.inputs)
        if not regions:
            raise PALRuntimeError("detector invoked with no regions to measure")
        digest_state = SHA1()
        actual_bytes = 0
        for addr, length in regions:
            digest_state.update(ctx.mem.read(addr, length))
            actual_bytes += length
        digest = digest_state.digest()
        # Charge hash time for the modelled kernel size (the functional
        # stand-in is smaller than a real 2.6.20 image).
        ctx.charge_hash(max(modelled_bytes, actual_bytes), "kernel-measure")
        ctx.tpm.pcr_extend(digest)
        ctx.write_output(digest)


@dataclass
class DetectionReport:
    """What the administrator concludes from one detection query."""

    attestation_valid: bool
    kernel_hash: bytes
    known_good_hash: bytes
    query_latency_ms: float
    failures: Tuple[str, ...] = ()

    @property
    def kernel_clean(self) -> bool:
        """True iff the attested hash matches the known-good value."""
        return self.attestation_valid and self.kernel_hash == self.known_good_hash

    @property
    def compromised(self) -> bool:
        """True when the attestation is sound but the hash differs — the
        kernel has been modified."""
        return self.attestation_valid and self.kernel_hash != self.known_good_hash


@dataclass
class AccessDecision:
    """One VPN admission decision with its evidence."""

    host: str
    admitted: bool
    report: DetectionReport


class VPNGateway:
    """The paper's motivating deployment (§6.1): "a corporation may wish
    to verify that employee laptops have not been compromised before
    allowing them to connect to the corporate VPN."

    One :class:`RemoteAdministrator` per enrolled host; admission requires
    a fresh, valid, clean detection report.  Every decision is logged.
    """

    def __init__(self) -> None:
        self._hosts: dict = {}
        self.audit_log: List[AccessDecision] = []

    def enroll(self, host: str, platform: FlickerPlatform) -> None:
        """Register a host (its platform stands in for the remote laptop)."""
        self._hosts[host] = RemoteAdministrator(platform)

    def request_access(self, host: str) -> AccessDecision:
        """Run a detection query against ``host`` and decide admission."""
        admin = self._hosts.get(host)
        if admin is None:
            decision = AccessDecision(
                host=host,
                admitted=False,
                report=DetectionReport(
                    attestation_valid=False,
                    kernel_hash=b"",
                    known_good_hash=b"",
                    query_latency_ms=0.0,
                    failures=("host not enrolled",),
                ),
            )
        else:
            report = admin.run_detection_query()
            decision = AccessDecision(
                host=host, admitted=report.kernel_clean, report=report
            )
        self.audit_log.append(decision)
        return decision


def measure_detection_pause_ms(platform: FlickerPlatform) -> float:
    """Virtual time the OS is suspended for one detection session (SKINIT +
    kernel hash + extends; the Quote runs with the OS live, §7.2)."""
    pal = RootkitDetectorPAL()
    inputs = describe_kernel_regions(platform.kernel)
    session = platform.execute_pal(pal, inputs=inputs)
    return session.total_ms


def simulate_kernel_build(
    platform: FlickerPlatform,
    detection_period_s: Optional[float],
    trials: int = 5,
    noise_sigma_ms: float = 1200.0,
) -> Tuple[float, float]:
    """Reproduce one row of Table 3: kernel build time under periodic
    detection.

    The build needs the host profile's base CPU time; each detection
    suspends the OS for one session's length, stretching wall time.  The
    returned (mean_ms, stddev_ms) includes measurement noise comparable to
    the paper's (std 0.9–2.6 s over their trials).
    """
    base_ms = platform.machine.profile.host.kernel_build_ms
    if detection_period_s is None:
        pause_ms = 0.0
        period_ms = float("inf")
    else:
        pause_ms = measure_detection_pause_ms(platform)
        period_ms = detection_period_s * 1000.0
        if platform.machine.multicore_isolation:
            # Next-generation hardware ([19] via §7.5): the session runs on
            # one core while the build continues on the others — the OS
            # never pauses.
            pause_ms = 0.0

    # Fixed point: wall = base + (wall / period) * pause.
    wall_ms = base_ms
    for _ in range(8):
        detections = wall_ms / period_ms if period_ms != float("inf") else 0.0
        wall_ms = base_ms + detections * pause_ms

    rng = platform.machine.rng.fork(f"kbuild:{detection_period_s}")
    samples = [wall_ms + rng.gauss(0.0, noise_sigma_ms) for _ in range(trials)]
    mean = sum(samples) / trials
    variance = sum((s - mean) ** 2 for s in samples) / trials
    return mean, variance ** 0.5


class RemoteAdministrator:
    """The remote verifier driving detection queries over the network."""

    def __init__(
        self,
        platform: FlickerPlatform,
        pal: Optional[RootkitDetectorPAL] = None,
        optimize_slb: bool = False,
    ) -> None:
        self.platform = platform
        self.pal = pal or RootkitDetectorPAL()
        #: Table 1 predates the §7.2 SKINIT optimization; the detector's
        #: SLB is small enough that the paper kept it unoptimized.
        self.optimize_slb = optimize_slb
        self._verifier = platform.verifier()
        self._nonce_counter = 0

    def known_good_hash(self) -> bytes:
        """The hash an unmodified kernel (with the current module set)
        should produce — computed from vendor-published known-good values
        (§6.1); here, from the kernel's pristine contents."""
        return sha1(self.platform.kernel.pristine_measurement_input())

    def _fresh_nonce(self) -> bytes:
        self._nonce_counter += 1
        return sha1(b"admin-nonce" + self._nonce_counter.to_bytes(8, "big"))

    def run_detection_query(self) -> DetectionReport:
        """One end-to-end query (§7.2's measured operation).

        Timeline: admin → server (nonce), Flicker session, tqd quote,
        server → admin (hash + attestation), verification.
        """
        machine = self.platform.machine
        start = machine.clock.now()

        nonce = self._fresh_nonce()
        network = self.platform.network
        network.send("admin", "server", nonce)

        inputs = describe_kernel_regions(self.platform.kernel)
        session: SessionResult = self.platform.execute_pal(
            self.pal, inputs=inputs, nonce=nonce, optimize=self.optimize_slb
        )
        attestation: Attestation = self.platform.attest(nonce, session)
        network.send("server", "admin", attestation)

        # The detector's single PAL extend is the kernel hash it outputs,
        # so the expected PCR-17 chain includes it (§4.4.1).
        report = self._verifier.verify(
            attestation, session.image, nonce, pal_extends=[attestation.outputs]
        )
        return DetectionReport(
            attestation_valid=report.ok,
            kernel_hash=attestation.outputs,
            known_good_hash=self.known_good_hash(),
            query_latency_ms=machine.clock.elapsed_since(start),
            failures=tuple(report.failures),
        )
