"""Session/HMAC plumbing over the raw TPM command set.

Both sides of the trust boundary need the same OIAP bookkeeping — odd
nonces, command digests, auth proofs — to issue authorized commands:

* the **untrusted OS** driver (TrouSerS' role; see
  :class:`repro.osim.tpm_driver.OSTPMDriver`), and
* the **PAL-side** TPM utilities module, which is part of every
  TPM-using PAL's TCB (:mod:`repro.core.modules.tpm_utils`).

This module holds the shared plumbing so the PAL's TCB never imports
:mod:`repro.osim` (untrusted-OS simulation code): the static TCB audit
(:mod:`repro.analysis.tcb`) enforces that boundary.  Quote — which needs
the AIK and only ever runs OS-side — lives on the OS subclass.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.crypto.sha1 import sha1
from repro.errors import TPMNVError
from repro.tpm.structures import PCRComposite, SealedBlob
from repro.tpm.tpm import TPMInterface, command_digest


class TPMSessionDriver:
    """Convenience layer over the TPM's authorized command set.

    Handles OIAP session setup, odd-nonce generation, and proof
    computation so that callers — the tqd, the flicker-module, and PALs'
    TPM-utilities module alike — can issue one-line Seal/Unseal calls.
    This mirrors the split in the paper between the tiny "TPM Driver"
    and the richer "TPM Utilities" (Figure 6).
    """

    def __init__(self, interface: TPMInterface, nonce_seed: bytes = b"os-driver") -> None:
        self._tpm = interface
        self._nonce_counter = 0
        self._nonce_seed = nonce_seed

    @property
    def interface(self) -> TPMInterface:
        """The underlying locality-bound TPM interface."""
        return self._tpm

    def _nonce_odd(self) -> bytes:
        self._nonce_counter += 1
        return sha1(self._nonce_seed + self._nonce_counter.to_bytes(8, "big"))

    # -- authorized commands ----------------------------------------------------

    def seal(self, data: bytes, pcr_policy: Dict[int, bytes]) -> SealedBlob:
        """TPM_Seal with SRK auth handled internally."""
        session = self._tpm.start_oiap()
        nonce_odd = self._nonce_odd()
        policy_blob = PCRComposite.from_mapping(pcr_policy).encode() if pcr_policy else b""
        digest = command_digest("TPM_Seal", data, policy_blob)
        proof = session.compute_proof(self._tpm.srk_auth, digest, nonce_odd)
        return self._tpm.seal(data, pcr_policy, session, nonce_odd, proof)

    def unseal(self, blob: SealedBlob) -> bytes:
        """TPM_Unseal with SRK auth handled internally.  PCR policy is
        still enforced by the TPM — auth alone releases nothing."""
        session = self._tpm.start_oiap()
        nonce_odd = self._nonce_odd()
        digest = command_digest("TPM_Unseal", blob.ciphertext)
        proof = session.compute_proof(self._tpm.srk_auth, digest, nonce_odd)
        return self._tpm.unseal(blob, session, nonce_odd, proof)

    def define_nv_space(
        self,
        index: int,
        size: int,
        owner_auth: bytes,
        read_pcr_policy: Optional[Dict[int, bytes]] = None,
        write_pcr_policy: Optional[Dict[int, bytes]] = None,
    ):
        """TPM_NV_DefineSpace using the given owner authorization."""
        # Validate before to_bytes: a negative index used to escape as an
        # untyped OverflowError (tests/fuzz/corpus/nv-define-negative.json).
        if not 0 <= index <= 0xFFFFFFFF:
            raise TPMNVError("NV index must be an unsigned 32-bit value")
        if not 0 <= size <= 0xFFFFFFFF:
            raise TPMNVError("NV size must be an unsigned 32-bit value")
        session = self._tpm.start_oiap()
        nonce_odd = self._nonce_odd()
        digest = command_digest(
            "TPM_NV_DefineSpace", index.to_bytes(4, "big"), size.to_bytes(4, "big")
        )
        proof = session.compute_proof(owner_auth, digest, nonce_odd)
        return self._tpm.nv_define_space(
            index, size, read_pcr_policy, write_pcr_policy, session, nonce_odd, proof
        )

    def create_counter(self, label: bytes, owner_auth: bytes) -> int:
        """Create a monotonic counter using owner authorization."""
        session = self._tpm.start_oiap()
        nonce_odd = self._nonce_odd()
        digest = command_digest("TPM_CreateCounter", label)
        proof = session.compute_proof(owner_auth, digest, nonce_odd)
        return self._tpm.create_counter(label, session, nonce_odd, proof)

    # -- unauthorized commands ------------------------------------------------------

    def pcr_read(self, index: int) -> bytes:
        """TPM_PCRRead."""
        return self._tpm.pcr_read(index)

    def pcr_extend(self, index: int, measurement: bytes) -> bytes:
        """TPM_Extend."""
        return self._tpm.pcr_extend(index, measurement)

    def get_random(self, num_bytes: int) -> bytes:
        """TPM_GetRandom."""
        return self._tpm.get_random(num_bytes)

    def nv_read(self, index: int) -> bytes:
        """TPM_NV_ReadValue."""
        return self._tpm.nv_read(index)

    def nv_write(self, index: int, data: bytes) -> None:
        """TPM_NV_WriteValue."""
        self._tpm.nv_write(index, data)

    def increment_counter(self, counter_id: int) -> int:
        """TPM_IncrementCounter."""
        return self._tpm.increment_counter(counter_id)

    def read_counter(self, counter_id: int) -> int:
        """TPM_ReadCounter."""
        return self._tpm.read_counter(counter_id)
