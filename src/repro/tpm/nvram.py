"""TPM non-volatile storage and monotonic counters.

Paper §4.3.2 sketches replay protection for sealed storage using "the
Monotonic Counter and Non-volatile Storage facilities of v1.2 TPMs": a
counter value kept *inside* the TPM, with PCR-gated access so only the
intended PAL can read or advance it.  This module provides both facilities:

* :class:`NVSpace` — a defined region of TPM NV RAM whose read and/or write
  may each be restricted to a set of required PCR values.
* :class:`MonotonicCounter` — a strictly increasing counter (TPM v1.2
  exposes these as a special command set; we model them directly and also
  build them over NV spaces in :mod:`repro.core.sealed_storage`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import TPMNVError, TPMPolicyError


@dataclass
class NVSpace:
    """One defined NV storage space.

    ``read_pcr_policy`` / ``write_pcr_policy`` map PCR index → required
    value; ``None`` means unrestricted.  Access checks are evaluated by the
    TPM against the live PCR bank at command time.
    """

    index: int
    size: int
    read_pcr_policy: Optional[Dict[int, bytes]] = None
    write_pcr_policy: Optional[Dict[int, bytes]] = None
    data: bytes = b""
    written: bool = field(default=False)

    def check_size(self, payload: bytes) -> None:
        """Reject writes larger than the defined space."""
        if len(payload) > self.size:
            raise TPMNVError(
                f"write of {len(payload)} bytes exceeds NV space {self.index:#x} "
                f"size {self.size}"
            )


@dataclass
class MonotonicCounter:
    """A strictly increasing 32-bit counter.

    TPM v1.2 counters may only be incremented once per "throttling period";
    the simulation does not model throttling, but does enforce
    monotonicity and 32-bit wrap refusal.

    ``owner_tenant`` partitions the counter space between vTPM tenants
    (:mod:`repro.vtpm`): a counter created through a tenant-bound
    interface is usable only through interfaces bound to the same
    tenant, while untenanted (hardware-owner) interfaces retain full
    access.  ``None`` marks a counter owned by the platform itself.
    """

    counter_id: int
    label: bytes
    value: int = 0
    owner_tenant: Optional[str] = None

    def increment(self) -> int:
        """Advance the counter; returns the new value."""
        if self.value >= 0xFFFFFFFF:
            raise TPMNVError("monotonic counter exhausted")
        self.value += 1
        return self.value


def flip_bit(data: bytes, bit_index: int) -> bytes:
    """Return ``data`` with one bit flipped (``bit_index`` taken modulo the
    total bit count).

    Deterministic single-bit corruption primitive shared by the fault
    injector: it models a failing NV cell here and an SLB image strike in
    :mod:`repro.faults.injector`.
    """
    if not data:
        return data
    bit_index %= len(data) * 8
    byte_index, bit = divmod(bit_index, 8)
    corrupted = bytearray(data)
    corrupted[byte_index] ^= 1 << bit
    return bytes(corrupted)


def check_pcr_policy(
    policy: Optional[Dict[int, bytes]],
    pcr_read,
    what: str,
) -> None:
    """Evaluate a PCR policy against live PCR values.

    ``pcr_read`` is a callable mapping index → current value.  Raises
    :class:`TPMPolicyError` naming the first mismatching register.
    """
    if not policy:
        return
    for index, required in sorted(policy.items()):
        current = pcr_read(index)
        if current != required:
            raise TPMPolicyError(
                f"{what} denied: PCR {index} is {current.hex()[:16]}…, "
                f"policy requires {required.hex()[:16]}…"
            )
