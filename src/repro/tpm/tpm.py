"""The TPM device and its locality-scoped command interface.

The TPM is passive: software (the OS's TPM driver, or a PAL's minimal
driver) issues commands through a :class:`TPMInterface` bound to a
*locality*.  Locality 4 is reserved for the CPU itself — it is the only
path that can issue the dynamic-PCR reset that accompanies SKINIT
(paper §2.3: "Only a hardware command from the CPU can reset PCR 17").
The machine keeps the locality-4 interface private; all software gets
locality 0.

Every command charges its latency to the platform's virtual clock from the
active :class:`~repro.sim.timing.TPMTimings` profile and emits a trace
event, which is how the benchmark harness decomposes session time into the
paper's per-operation rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.crypto.aes import AES128
from repro.crypto.hmac import constant_time_equal, hmac_sha1
from repro.crypto.pkcs1 import pkcs1_sign_sha1
from repro.crypto.rsa import RSAKeyPair, generate_rsa_keypair
from repro.crypto.sha1 import sha1
from repro.errors import (
    TPMAuthError,
    TPMError,
    TPMLocalityError,
    TPMNVError,
)
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRNG
from repro.sim.timing import TPMTimings
from repro.sim.trace import EventTrace
from repro.tpm.nvram import MonotonicCounter, NVSpace, check_pcr_policy
from repro.tpm.pcr import DYNAMIC_PCRS, PCRBank
from repro.tpm.sessions import WELL_KNOWN_AUTH, AuthSession
from repro.tpm.structures import PCRComposite, Quote, SealedBlob

#: Locality of ordinary software (OS drivers, PAL TPM driver).
LOCALITY_OS = 0

#: Locality reserved for the CPU microcode path used by SKINIT.
LOCALITY_CPU = 4

#: Default modulus size for TPM-resident keys.  The real chip uses 2048-bit
#: keys; the simulation defaults to 512 bits so that test runs are fast —
#: *virtual* latencies come from the timing profile and are unaffected.
DEFAULT_KEY_BITS = 512


def command_digest(name: str, *parts: bytes) -> bytes:
    """Digest of a command's name and parameters, as used in auth proofs."""
    h = name.encode("ascii")
    for part in parts:
        h += len(part).to_bytes(4, "big") + part
    return sha1(h)


class TPM:
    """A TPM v1.2 device instance.

    Construct one per :class:`~repro.hw.machine.Machine`; obtain command
    interfaces via :meth:`interface`.
    """

    def __init__(
        self,
        clock: VirtualClock,
        trace: EventTrace,
        rng: DeterministicRNG,
        timings: TPMTimings,
        key_bits: int = DEFAULT_KEY_BITS,
        jitter_fraction: float = 0.0,
    ) -> None:
        self.timings = timings
        #: Relative per-command latency noise (σ as a fraction of the
        #: nominal cost).  Zero by default for exact table reproduction;
        #: the paper's own measurements carry a few percent of spread
        #: (e.g. 14% std error on RSA keygen, §7.4.1).
        self.jitter_fraction = jitter_fraction
        self._jitter_rng = rng.fork("tpm-jitter")
        self._clock = clock
        self._trace = trace
        self._rng = rng.fork("tpm")
        self.pcrs = PCRBank()

        # Key hierarchy.  The EK/SRK are created by the manufacturer; the
        # AIK is created on request and certified by a Privacy CA
        # (repro.tpm.privacy_ca).  Private halves never leave this object.
        # Generated lazily: key creation is the expensive part of TPM
        # construction and many simulations never quote.
        self._key_bits = key_bits
        self._key_rngs = {
            name: self._rng.fork(f"key:{name}") for name in ("ek", "srk", "aik")
        }
        self._keys: Dict[str, RSAKeyPair] = {}

        # Internal symmetric storage keys protecting sealed blobs.  On the
        # real chip sealed data is wrapped under the (asymmetric) SRK; the
        # simulation wraps under TPM-internal symmetric keys, which has the
        # same trust property — the keys never leave the TPM.
        self._storage_key = self._rng.bytes(16)
        self._storage_mac_key = self._rng.bytes(20)

        self.srk_auth = WELL_KNOWN_AUTH
        self.aik_auth = WELL_KNOWN_AUTH
        self._owner_auth: Optional[bytes] = None

        self._sessions: Dict[int, AuthSession] = {}
        self._next_session_id = 1
        self._nv_spaces: Dict[int, NVSpace] = {}
        self._counters: Dict[int, MonotonicCounter] = {}
        self._next_counter_id = 1

        # One-shot result cache for idempotent read commands (PCRRead,
        # NV_ReadValue, ReadCounter, GetCapability).  Any state-mutating
        # command clears it wholesale, so a cached value is always exactly
        # what recomputation would produce.  GetRandom is deliberately
        # excluded: it consumes RNG state and is never idempotent.  The
        # cache changes *wall* cost only — every command still charges its
        # full virtual latency and emits its trace event.
        self._read_cache: Dict[Tuple, object] = {}
        self._read_cache_gen = self.pcrs.generation
        self._read_cache_hits = 0
        self._read_cache_misses = 0

        #: Fault-injection hook, installed by the owning machine.  Called as
        #: ``fault_hook("tpm.command", op=..., **detail)`` at the entry of
        #: every command; may raise a typed :class:`~repro.errors.TPMError`
        #: or return replacement data (see :mod:`repro.faults`).
        self.fault_hook = None
        #: Observability hub, installed by the owning machine
        #: (:meth:`repro.hw.machine.Machine.enable_observability`).  When
        #: set, every command records a child span and a latency-histogram
        #: sample; ``None`` keeps the command path overhead-free.
        self.obs = None

    # -- plumbing -------------------------------------------------------------

    def _fault(self, op: str, **detail):
        if self.fault_hook is None:
            return None
        return self.fault_hook("tpm.command", op=op, **detail)

    def _charge(self, ms: float, op: str, **detail) -> None:
        if self.jitter_fraction > 0.0 and ms > 0.0:
            noisy = self._jitter_rng.gauss(ms, ms * self.jitter_fraction)
            ms = max(0.0, noisy)
        self._clock.advance(ms)
        self._trace.emit(self._clock.now(), "tpm", op, **detail)
        obs = self.obs
        if obs is not None:
            # The clock already advanced by the (skew-scaled) cost, so the
            # recorded span ends now and the histogram sees the real charge.
            charged = ms * self._clock.skew
            obs.record_complete(f"tpm:{op}", category="tpm",
                                duration_ms=charged, op=op)
            obs.registry.counter(
                "tpm_commands_total", "TPM commands issued"
            ).inc(op=op)
            obs.registry.histogram(
                "tpm_command_ms", "Per-command TPM latency"
            ).observe(charged, op=op)

    def _cached_read(self, key: Tuple, compute):
        """Serve an idempotent read from the one-shot cache."""
        if self.pcrs.generation != self._read_cache_gen:
            # A hardware path (SKINIT/TXT) mutated the PCR bank directly,
            # bypassing the command layer: treat it like any mutation.
            self._invalidate_reads()
        if key in self._read_cache:
            self._read_cache_hits += 1
            return self._read_cache[key]
        value = compute()
        self._read_cache[key] = value
        self._read_cache_misses += 1
        return value

    def _invalidate_reads(self) -> None:
        """Drop every cached read; called by all state-mutating commands."""
        self._read_cache.clear()
        self._read_cache_gen = self.pcrs.generation

    def read_cache_info(self) -> Dict[str, int]:
        """Hit/miss/size statistics of the idempotent-read cache."""
        return {
            "hits": self._read_cache_hits,
            "misses": self._read_cache_misses,
            "entries": len(self._read_cache),
        }

    def interface(self, locality: int,
                  tenant: Optional[str] = None) -> "TPMInterface":
        """A command interface bound to ``locality``.

        Software may request localities 0–3; locality 4 interfaces are
        created once by the machine and never handed to software.

        ``tenant`` binds the interface to a vTPM tenant
        (:mod:`repro.vtpm`): counters created through it belong to that
        tenant and are unreachable through interfaces bound to any other
        tenant.  ``None`` (the default) is the untenanted hardware-owner
        view with full access — existing callers are unaffected.
        """
        if not 0 <= locality <= 4:
            raise TPMLocalityError(f"invalid locality {locality}")
        return TPMInterface(self, locality, tenant)

    def reboot(self) -> None:
        """Platform reset: PCR semantics per §2.3, sessions dropped.

        NV storage and counters persist (they are non-volatile)."""
        self.pcrs.reboot()
        self._sessions.clear()
        self._invalidate_reads()

    # -- snapshot / clone -------------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """Snapshot of all persistent TPM state.

        Covers the PCR bank, NV spaces, monotonic counters, the key
        hierarchy (generated keypairs plus the RNG streams of keys not
        yet generated, so a restored TPM derives the *same* keys on
        demand), the internal storage keys, ownership, and the command
        RNG stream position.  Volatile authorization sessions are not
        captured — restoring behaves like a platform reset, exactly as
        migrating a TPM's NV state to new hardware would.  Together with
        :meth:`import_state` this is the snapshot/clone protocol the
        fleet's template construction and future vTPM migration build on.
        """
        return {
            "pcr_values": self.pcrs.export_values(),
            "keys": dict(self._keys),
            "key_rng_states": {
                name: child.getstate() for name, child in self._key_rngs.items()
            },
            "rng_state": self._rng.getstate(),
            "jitter_rng_state": self._jitter_rng.getstate(),
            "storage_key": self._storage_key,
            "storage_mac_key": self._storage_mac_key,
            "owner_auth": self._owner_auth,
            "srk_auth": self.srk_auth,
            "aik_auth": self.aik_auth,
            "nv_spaces": {
                index: NVSpace(
                    index=space.index,
                    size=space.size,
                    read_pcr_policy=(dict(space.read_pcr_policy)
                                     if space.read_pcr_policy else None),
                    write_pcr_policy=(dict(space.write_pcr_policy)
                                      if space.write_pcr_policy else None),
                    data=space.data,
                    written=space.written,
                )
                for index, space in self._nv_spaces.items()
            },
            "counters": {
                cid: MonotonicCounter(counter_id=c.counter_id,
                                      label=c.label, value=c.value,
                                      owner_tenant=c.owner_tenant)
                for cid, c in self._counters.items()
            },
            "next_counter_id": self._next_counter_id,
        }

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot taken with :meth:`export_state`."""
        self.pcrs.restore_values(state["pcr_values"])
        self._keys = dict(state["keys"])
        for name, rng_state in state["key_rng_states"].items():
            self._key_rngs[name].setstate(rng_state)
        self._rng.setstate(state["rng_state"])
        self._jitter_rng.setstate(state["jitter_rng_state"])
        self._storage_key = state["storage_key"]
        self._storage_mac_key = state["storage_mac_key"]
        self._owner_auth = state["owner_auth"]
        self.srk_auth = state["srk_auth"]
        self.aik_auth = state["aik_auth"]
        # Copy mutable records so one snapshot can seed many TPMs.
        self._nv_spaces = {
            index: NVSpace(
                index=space.index, size=space.size,
                read_pcr_policy=(dict(space.read_pcr_policy)
                                 if space.read_pcr_policy else None),
                write_pcr_policy=(dict(space.write_pcr_policy)
                                  if space.write_pcr_policy else None),
                data=space.data, written=space.written,
            )
            for index, space in state["nv_spaces"].items()
        }
        self._counters = {
            cid: MonotonicCounter(counter_id=c.counter_id,
                                  label=c.label, value=c.value,
                                  owner_tenant=c.owner_tenant)
            for cid, c in state["counters"].items()
        }
        self._next_counter_id = state["next_counter_id"]
        self._sessions.clear()
        self._invalidate_reads()

    # -- ownership ------------------------------------------------------------

    def take_ownership(self, owner_auth: bytes) -> None:
        """Install the 20-byte TPM Owner Authorization Data (once)."""
        if self._owner_auth is not None:
            raise TPMAuthError("TPM already has an owner")
        if len(owner_auth) != 20:
            raise TPMError("owner auth must be 20 bytes")
        self._owner_auth = owner_auth
        self._invalidate_reads()  # GetCapability reports ownership

    @property
    def owner_auth_installed(self) -> bool:
        """Whether TakeOwnership has run."""
        return self._owner_auth is not None

    def _require_owner_auth(self, session: AuthSession, digest: bytes,
                            nonce_odd: bytes, proof: bytes) -> None:
        if self._owner_auth is None:
            raise TPMAuthError("no owner installed")
        session.verify_proof(self._owner_auth, digest, nonce_odd, proof)

    # -- public keys ----------------------------------------------------------

    def _key(self, name: str) -> RSAKeyPair:
        if name not in self._keys:
            self._keys[name] = generate_rsa_keypair(self._key_bits, self._key_rngs[name])
        return self._keys[name]

    @property
    def ek_public(self):
        """Endorsement key public half."""
        return self._key("ek").public

    @property
    def aik_public(self):
        """Attestation identity key public half."""
        return self._key("aik").public

    # -- sessions ---------------------------------------------------------------

    def start_oiap(self) -> AuthSession:
        """Open an OIAP session; returns it (caller keeps the handle)."""
        session = AuthSession(
            session_id=self._next_session_id,
            session_type="OIAP",
            nonce_even=self._rng.bytes(20),
        )
        self._next_session_id += 1
        self._sessions[session.session_id] = session
        self._charge(self.timings.session_ms, "oiap_start", session=session.session_id)
        return session

    def start_osap(self, entity_auth: bytes, nonce_odd_osap: bytes) -> AuthSession:
        """Open an OSAP session bound to an entity secret."""
        nonce_even_osap = self._rng.bytes(20)
        session = AuthSession(
            session_id=self._next_session_id,
            session_type="OSAP",
            nonce_even=self._rng.bytes(20),
            shared_secret=AuthSession.osap_shared_secret(
                entity_auth, nonce_even_osap, nonce_odd_osap
            ),
        )
        self._next_session_id += 1
        self._sessions[session.session_id] = session
        self._charge(self.timings.session_ms, "osap_start", session=session.session_id)
        return session

    def _session(self, session_id: int) -> AuthSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise TPMAuthError(f"no such session {session_id}") from None

    # -- core commands (locality-checked wrappers live on TPMInterface) -----------

    def _pcr_read(self, index: int) -> bytes:
        self._fault("pcr_read", pcr=index)
        self._charge(self.timings.pcr_read_ms, "pcr_read", pcr=index)
        return self._cached_read(("pcr_read", index),
                                 lambda: self.pcrs.read(index))

    def _pcr_extend(self, index: int, measurement: bytes) -> bytes:
        self._fault("pcr_extend", pcr=index)
        value = self.pcrs.extend(index, measurement)
        self._invalidate_reads()
        self._charge(
            self.timings.extend_ms, "pcr_extend", pcr=index, measurement=measurement.hex()
        )
        return value

    def _dynamic_reset(self, locality: int) -> None:
        if locality != LOCALITY_CPU:
            raise TPMLocalityError(
                "dynamic PCR reset requires locality 4 (CPU hardware command)"
            )
        self.pcrs.dynamic_reset()
        self._invalidate_reads()
        self._trace.emit(self._clock.now(), "tpm", "dynamic_pcr_reset", pcrs=list(DYNAMIC_PCRS))
        if self.obs is not None:
            self.obs.event("tpm.dynamic_pcr_reset", category="tpm",
                           locality=locality)

    def _get_random(self, num_bytes: int) -> bytes:
        # Found by the coverage-guided fuzzer (tests/fuzz/corpus/
        # tpm-get-random-negative.json): a negative count escaped as an
        # untyped ValueError from the RNG, violating the typed-error
        # contract at the PAL boundary.
        if num_bytes < 0:
            raise TPMError("GetRandom byte count must be non-negative")
        self._fault("get_random", nbytes=num_bytes)
        self._charge(self.timings.getrandom_ms(num_bytes), "get_random", nbytes=num_bytes)
        return self._rng.bytes(num_bytes)

    def _quote(
        self,
        nonce: bytes,
        pcr_indices: Iterable[int],
        session_id: int,
        nonce_odd: bytes,
        proof: bytes,
    ) -> Quote:
        self._fault("quote")
        indices = tuple(sorted(set(pcr_indices)))
        digest = command_digest("TPM_Quote", nonce, bytes(indices))
        self._session(session_id).verify_proof(self.aik_auth, digest, nonce_odd, proof)
        composite = PCRComposite.from_mapping(self.pcrs.snapshot(indices))
        info = Quote.quote_info(composite, nonce)
        signature = pkcs1_sign_sha1(self._key("aik").private, info)
        self._charge(self.timings.quote_ms, "quote", pcrs=list(indices), nonce=nonce.hex())
        return Quote(
            composite=composite,
            nonce=nonce,
            signature=signature,
            aik_public=self._key("aik").public,
        )

    # -- sealed storage ---------------------------------------------------------

    @staticmethod
    def _encode_sealed_payload(pcr_policy: Dict[int, bytes], data: bytes) -> bytes:
        policy = PCRComposite.from_mapping(pcr_policy).encode() if pcr_policy else b""
        return (
            len(policy).to_bytes(4, "big") + policy
            + len(data).to_bytes(4, "big") + data
        )

    @staticmethod
    def _decode_sealed_payload(payload: bytes) -> Tuple[Dict[int, bytes], bytes]:
        policy_len = int.from_bytes(payload[:4], "big")
        off = 4
        policy_blob = payload[off : off + policy_len]
        off += policy_len
        data_len = int.from_bytes(payload[off : off + 4], "big")
        data = payload[off + 4 : off + 4 + data_len]
        policy: Dict[int, bytes] = {}
        if policy_blob:
            count = int.from_bytes(policy_blob[:2], "big")
            p = 2
            indices = []
            for _ in range(count):
                indices.append(int.from_bytes(policy_blob[p : p + 2], "big"))
                p += 2
            values_len = int.from_bytes(policy_blob[p : p + 4], "big")
            p += 4
            values = policy_blob[p : p + values_len]
            for i, index in enumerate(indices):
                policy[index] = values[20 * i : 20 * i + 20]
        return policy, data

    def _seal(
        self,
        data: bytes,
        pcr_policy: Dict[int, bytes],
        session_id: int,
        nonce_odd: bytes,
        proof: bytes,
    ) -> SealedBlob:
        self._fault("seal", nbytes=len(data))
        digest = command_digest(
            "TPM_Seal", data, PCRComposite.from_mapping(pcr_policy).encode() if pcr_policy else b""
        )
        self._session(session_id).verify_proof(self.srk_auth, digest, nonce_odd, proof)
        payload = self._encode_sealed_payload(pcr_policy, data)
        iv = self._rng.bytes(16)
        ciphertext = iv + AES128(self._storage_key).encrypt_cbc(payload, iv)
        # MAC the full framing (header + ciphertext), not the ciphertext
        # alone: the fuzzer showed a header-only bit-flip slipping past a
        # ciphertext-only MAC (tests/fuzz/corpus/seal-header-tamper.json).
        blob = SealedBlob(ciphertext=ciphertext, mac=b"\x00" * 20,
                          bound_pcrs=tuple(sorted(pcr_policy)))
        mac = hmac_sha1(self._storage_mac_key, blob.authenticated_bytes())
        self._charge(self.timings.seal_ms(len(data)), "seal", nbytes=len(data),
                     pcrs=sorted(pcr_policy))
        return SealedBlob(ciphertext=ciphertext, mac=mac, bound_pcrs=blob.bound_pcrs)

    def _unseal(
        self,
        blob: SealedBlob,
        session_id: int,
        nonce_odd: bytes,
        proof: bytes,
    ) -> bytes:
        self._fault("unseal")
        digest = command_digest("TPM_Unseal", blob.ciphertext)
        self._session(session_id).verify_proof(self.srk_auth, digest, nonce_odd, proof)
        expected_mac = hmac_sha1(self._storage_mac_key, blob.authenticated_bytes())
        if not constant_time_equal(expected_mac, blob.mac):
            raise TPMError("sealed blob integrity check failed")
        iv, body = blob.ciphertext[:16], blob.ciphertext[16:]
        payload = AES128(self._storage_key).decrypt_cbc(body, iv)
        policy, data = self._decode_sealed_payload(payload)
        check_pcr_policy(policy, self.pcrs.read, "TPM_Unseal")
        self._charge(self.timings.unseal_ms(len(data)), "unseal", nbytes=len(data))
        return data

    # -- NV storage and counters --------------------------------------------------

    def _nv_define_space(
        self,
        index: int,
        size: int,
        read_pcr_policy: Optional[Dict[int, bytes]],
        write_pcr_policy: Optional[Dict[int, bytes]],
        session_id: int,
        nonce_odd: bytes,
        proof: bytes,
    ) -> NVSpace:
        digest = command_digest(
            "TPM_NV_DefineSpace", index.to_bytes(4, "big"), size.to_bytes(4, "big")
        )
        self._require_owner_auth(self._session(session_id), digest, nonce_odd, proof)
        if index in self._nv_spaces:
            raise TPMNVError(f"NV space {index:#x} already defined")
        if not 0 <= index <= 0xFFFFFFFF:
            raise TPMNVError("NV index must be an unsigned 32-bit value")
        if size <= 0 or size > 4096:
            raise TPMNVError("NV space size must be in 1..4096 bytes")
        space = NVSpace(
            index=index,
            size=size,
            read_pcr_policy=dict(read_pcr_policy) if read_pcr_policy else None,
            write_pcr_policy=dict(write_pcr_policy) if write_pcr_policy else None,
        )
        self._nv_spaces[index] = space
        self._invalidate_reads()
        self._charge(self.timings.nv_op_ms, "nv_define", index=index, size=size)
        return space

    def _nv_space(self, index: int) -> NVSpace:
        try:
            return self._nv_spaces[index]
        except KeyError:
            raise TPMNVError(f"NV space {index:#x} not defined") from None

    def _nv_write(self, index: int, data: bytes) -> None:
        corrupted = self._fault("nv_write", index=index, data=data)
        if corrupted is not None:
            # The fault model lets the injector hand back the bytes the dying
            # NV cell actually retained; the command itself "succeeds".
            data = corrupted
        space = self._nv_space(index)
        check_pcr_policy(space.write_pcr_policy, self.pcrs.read, f"NV write {index:#x}")
        space.check_size(data)
        space.data = data
        space.written = True
        self._invalidate_reads()
        self._charge(self.timings.nv_op_ms, "nv_write", index=index, nbytes=len(data))

    def _nv_read(self, index: int) -> bytes:
        self._fault("nv_read", index=index)
        space = self._nv_space(index)
        check_pcr_policy(space.read_pcr_policy, self.pcrs.read, f"NV read {index:#x}")
        if not space.written:
            raise TPMNVError(f"NV space {index:#x} has never been written")
        self._charge(self.timings.nv_op_ms, "nv_read", index=index)
        return self._cached_read(("nv_read", index), lambda: space.data)

    def _create_counter(self, label: bytes, session_id: int, nonce_odd: bytes,
                        proof: bytes, tenant: Optional[str] = None) -> int:
        digest = command_digest("TPM_CreateCounter", label)
        self._require_owner_auth(self._session(session_id), digest, nonce_odd, proof)
        counter = MonotonicCounter(counter_id=self._next_counter_id, label=label,
                                   owner_tenant=tenant)
        self._counters[counter.counter_id] = counter
        self._next_counter_id += 1
        self._invalidate_reads()
        detail = {"counter": counter.counter_id}
        if tenant is not None:
            detail["tenant"] = tenant
        self._charge(self.timings.nv_op_ms, "counter_create", **detail)
        return counter.counter_id

    def _counter(self, counter_id: int,
                 tenant: Optional[str] = None) -> MonotonicCounter:
        try:
            counter = self._counters[counter_id]
        except KeyError:
            raise TPMNVError(f"no monotonic counter {counter_id}") from None
        # Tenant partition: a tenant-bound interface may only touch its own
        # counters.  The untenanted (hardware-owner) view sees everything.
        if tenant is not None and counter.owner_tenant != tenant:
            raise TPMAuthError(
                f"counter {counter_id} is not owned by tenant {tenant!r}"
            )
        return counter

    def _increment_counter(self, counter_id: int,
                           tenant: Optional[str] = None) -> int:
        self._fault("counter_increment", counter=counter_id)
        value = self._counter(counter_id, tenant).increment()
        self._invalidate_reads()
        detail = {"counter": counter_id, "value": value}
        if tenant is not None:
            detail["tenant"] = tenant
        self._charge(self.timings.nv_op_ms, "counter_increment", **detail)
        return value

    def _read_counter(self, counter_id: int,
                      tenant: Optional[str] = None) -> int:
        detail = {"counter": counter_id}
        if tenant is not None:
            detail["tenant"] = tenant
        self._charge(self.timings.pcr_read_ms, "counter_read", **detail)
        return self._cached_read(("counter_read", counter_id, tenant),
                                 lambda: self._counter(counter_id, tenant).value)

    def _get_capability(self) -> Dict[str, object]:
        self._charge(self.timings.pcr_read_ms, "get_capability")
        cached = self._cached_read(("get_capability",), lambda: {
            "version": "1.2",
            "pcr_count": 24,
            "vendor": self.timings.name,
            "nv_spaces": sorted(self._nv_spaces),
            "counters": sorted(self._counters),
            "owned": self.owner_auth_installed,
        })
        # Hand out a fresh copy: callers may mutate the dict they receive.
        return {k: list(v) if isinstance(v, list) else v
                for k, v in cached.items()}


class TPMInterface:
    """Locality-bound view of the TPM's command set.

    This is the object software holds: the OS TPM driver gets one at
    locality 0, and a PAL's minimal driver gets one created during the
    Flicker session.  All methods forward to the device with the locality
    attached where it matters.

    An interface may additionally be bound to a vTPM ``tenant``
    (:meth:`TPM.interface`): counter commands then carry the tenant so
    the device can enforce the per-tenant counter partition.
    """

    def __init__(self, tpm: TPM, locality: int,
                 tenant: Optional[str] = None) -> None:
        self._tpm = tpm
        self.locality = locality
        self.tenant = tenant

    # Convenience re-exports -------------------------------------------------

    @property
    def timings(self) -> TPMTimings:
        """The active timing profile (read-only)."""
        return self._tpm.timings

    def read_cache_info(self) -> Dict[str, int]:
        """Statistics of the device's idempotent-read cache."""
        return self._tpm.read_cache_info()

    @property
    def aik_public(self):
        """AIK public key (public information)."""
        return self._tpm.aik_public

    @property
    def srk_auth(self) -> bytes:
        """The SRK authorization secret.

        The simulation uses the TCG well-known secret (20 zero bytes), which
        is public by definition — possessing it grants no access to sealed
        *contents*, which remain PCR-gated."""
        return self._tpm.srk_auth

    @property
    def aik_auth(self) -> bytes:
        """AIK usage authorization secret (well-known in this simulation)."""
        return self._tpm.aik_auth

    # Commands ---------------------------------------------------------------

    def pcr_read(self, index: int) -> bytes:
        """TPM_PCRRead."""
        return self._tpm._pcr_read(index)

    def pcr_extend(self, index: int, measurement: bytes) -> bytes:
        """TPM_Extend: fold a 20-byte measurement into a PCR."""
        return self._tpm._pcr_extend(index, measurement)

    def dynamic_pcr_reset(self) -> None:
        """The hardware reset of PCRs 17–23.  Only the CPU's locality-4
        interface may issue it; software calls raise
        :class:`TPMLocalityError` (paper §2.3)."""
        self._tpm._dynamic_reset(self.locality)

    def get_random(self, num_bytes: int) -> bytes:
        """TPM_GetRandom."""
        return self._tpm._get_random(num_bytes)

    def get_capability(self) -> Dict[str, object]:
        """TPM_GetCapability (abbreviated)."""
        return self._tpm._get_capability()

    def start_oiap(self) -> AuthSession:
        """Open an OIAP authorization session."""
        return self._tpm.start_oiap()

    def start_osap(self, entity_auth: bytes, nonce_odd_osap: bytes) -> AuthSession:
        """Open an OSAP authorization session bound to an entity."""
        return self._tpm.start_osap(entity_auth, nonce_odd_osap)

    def quote(self, nonce: bytes, pcr_indices: Iterable[int], session: AuthSession,
              nonce_odd: bytes, proof: bytes) -> Quote:
        """TPM_Quote: AIK-sign the selected PCRs and the challenge nonce."""
        return self._tpm._quote(nonce, pcr_indices, session.session_id, nonce_odd, proof)

    def seal(self, data: bytes, pcr_policy: Dict[int, bytes], session: AuthSession,
             nonce_odd: bytes, proof: bytes) -> SealedBlob:
        """TPM_Seal: bind ``data`` to the given PCR policy."""
        return self._tpm._seal(data, pcr_policy, session.session_id, nonce_odd, proof)

    def unseal(self, blob: SealedBlob, session: AuthSession,
               nonce_odd: bytes, proof: bytes) -> bytes:
        """TPM_Unseal: release data iff live PCRs match the sealed policy."""
        return self._tpm._unseal(blob, session.session_id, nonce_odd, proof)

    def nv_define_space(self, index: int, size: int,
                        read_pcr_policy: Optional[Dict[int, bytes]],
                        write_pcr_policy: Optional[Dict[int, bytes]],
                        session: AuthSession, nonce_odd: bytes, proof: bytes) -> NVSpace:
        """TPM_NV_DefineSpace (owner-authorized)."""
        return self._tpm._nv_define_space(
            index, size, read_pcr_policy, write_pcr_policy,
            session.session_id, nonce_odd, proof,
        )

    def nv_write(self, index: int, data: bytes) -> None:
        """TPM_NV_WriteValue (PCR-policy checked)."""
        self._tpm._nv_write(index, data)

    def nv_read(self, index: int) -> bytes:
        """TPM_NV_ReadValue (PCR-policy checked)."""
        return self._tpm._nv_read(index)

    def create_counter(self, label: bytes, session: AuthSession,
                       nonce_odd: bytes, proof: bytes) -> int:
        """Create a monotonic counter (owner-authorized); returns its id.

        Counters created through a tenant-bound interface belong to that
        tenant and are invisible to every other tenant's interfaces."""
        return self._tpm._create_counter(label, session.session_id, nonce_odd,
                                         proof, tenant=self.tenant)

    def increment_counter(self, counter_id: int) -> int:
        """TPM_IncrementCounter (tenant-partition checked)."""
        return self._tpm._increment_counter(counter_id, tenant=self.tenant)

    def read_counter(self, counter_id: int) -> int:
        """TPM_ReadCounter (tenant-partition checked)."""
        return self._tpm._read_counter(counter_id, tenant=self.tenant)
