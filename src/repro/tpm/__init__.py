"""Simulated TPM v1.2.

Implements the slice of the TPM v1.2 command set that Flicker uses
(paper §2 and Figure 6's "TPM Driver" / "TPM Utilities" modules):

* PCRs — 24 registers; static PCRs 0–16 reset only at reboot, dynamic PCRs
  17–23 reset to −1 at reboot and to 0 by the CPU's SKINIT-issued hardware
  command (:mod:`repro.tpm.pcr`).
* Quote — AIK-signed attestation over selected PCRs and a challenge nonce
  (:mod:`repro.tpm.structures`).
* Seal/Unseal — ciphertexts bound to PCR values at release time.
* GetRandom, GetCapability, PCR Read/Extend.
* OIAP/OSAP authorization sessions (:mod:`repro.tpm.sessions`).
* Non-volatile storage with PCR-gated access and monotonic counters
  (:mod:`repro.tpm.nvram`), used for sealed-storage replay protection.
* The key hierarchy — EK, SRK, AIK — with a Privacy CA that certifies AIKs
  (:mod:`repro.tpm.privacy_ca`).

Latency of every command is charged to the platform's virtual clock using
the active :class:`~repro.sim.timing.TPMTimings` profile, which is how the
paper's TPM-dominated measurements are reproduced.
"""

from repro.tpm.pcr import PCR_COUNT, DYNAMIC_PCRS, PCRBank, PCR_DYNAMIC_BOOT_VALUE
from repro.tpm.structures import PCRComposite, Quote, SealedBlob
from repro.tpm.sessions import AuthSession, WELL_KNOWN_AUTH
from repro.tpm.nvram import NVSpace, MonotonicCounter
from repro.tpm.tpm import TPM, TPMInterface, LOCALITY_CPU, LOCALITY_OS
from repro.tpm.privacy_ca import PrivacyCA, AIKCertificate

__all__ = [
    "PCR_COUNT",
    "DYNAMIC_PCRS",
    "PCRBank",
    "PCR_DYNAMIC_BOOT_VALUE",
    "PCRComposite",
    "Quote",
    "SealedBlob",
    "AuthSession",
    "WELL_KNOWN_AUTH",
    "NVSpace",
    "MonotonicCounter",
    "TPM",
    "TPMInterface",
    "LOCALITY_CPU",
    "LOCALITY_OS",
    "PrivacyCA",
    "AIKCertificate",
]
