"""OIAP/OSAP authorization sessions.

TPM v1.2 commands that use an authorized entity (Seal/Unseal against the
SRK, NV space definition against the owner) must prove knowledge of the
entity's 20-byte authorization secret without sending it: the caller HMACs
a digest of the command parameters with the secret, keyed into a rolling
nonce exchange.  The paper's TPM Utilities module implements "the OIAP and
OSAP sessions necessary to authorize Seal and Unseal" (§5.1.2); this module
is the equivalent.

The simulation implements the protocol honestly (nonces, HMAC proofs,
rolling nonce update, OSAP shared secrets) in a simplified framing: one
proof per command, no continueAuthSession flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hmac import constant_time_equal, hmac_sha1
from repro.errors import TPMAuthError

#: The TCG "well-known secret": 20 zero bytes, the default SRK auth.
WELL_KNOWN_AUTH = b"\x00" * 20


@dataclass
class AuthSession:
    """One authorization session between a caller and the TPM.

    Attributes
    ----------
    session_type:
        ``"OIAP"`` (object-independent; proves the entity secret directly)
        or ``"OSAP"`` (object-specific; proofs use a derived shared secret).
    nonce_even:
        The TPM's current rolling nonce.
    shared_secret:
        For OSAP: HMAC(entity_auth, nonce_even_osap ‖ nonce_odd_osap).
        For OIAP: unused (proofs use the entity secret itself).
    """

    session_id: int
    session_type: str
    nonce_even: bytes
    shared_secret: bytes = b""
    closed: bool = field(default=False)

    def proof_key(self, entity_auth: bytes) -> bytes:
        """The HMAC key a caller must use for this session."""
        if self.session_type == "OSAP":
            return self.shared_secret
        return entity_auth

    def compute_proof(self, entity_auth: bytes, command_digest: bytes, nonce_odd: bytes) -> bytes:
        """Caller side: the authorization HMAC for one command."""
        key = self.proof_key(entity_auth)
        return hmac_sha1(key, command_digest + self.nonce_even + nonce_odd)

    def verify_proof(
        self,
        entity_auth: bytes,
        command_digest: bytes,
        nonce_odd: bytes,
        proof: bytes,
    ) -> None:
        """TPM side: check a caller's proof and roll the even nonce.

        Raises :class:`TPMAuthError` on mismatch; on success the session's
        ``nonce_even`` advances so proofs cannot be replayed.
        """
        if self.closed:
            raise TPMAuthError("authorization session is closed")
        expected = self.compute_proof(entity_auth, command_digest, nonce_odd)
        if not constant_time_equal(expected, proof):
            self.closed = True  # TCG behaviour: a failed auth kills the session
            raise TPMAuthError("authorization failed (bad HMAC proof)")
        # Roll the nonce so the same proof cannot authorize a second command.
        self.nonce_even = hmac_sha1(self.nonce_even, nonce_odd)

    @staticmethod
    def osap_shared_secret(entity_auth: bytes, nonce_even_osap: bytes,
                           nonce_odd_osap: bytes) -> bytes:
        """Derive the OSAP shared secret for an entity."""
        return hmac_sha1(entity_auth, nonce_even_osap + nonce_odd_osap)
