"""TPM data structures: PCR composites, quotes, and sealed blobs.

The encodings are deterministic and self-describing rather than
byte-compatible with the TCG specification — the paper's protocols depend
on *what* is signed/bound, not on TCG wire formats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.crypto.rsa import RSAPublicKey
from repro.crypto.sha1 import sha1
from repro.errors import TPMError

_QUOTE_FIXED = b"\x01\x01\x00\x00QUOT"  # version 1.1, ordinal "QUOT"


@dataclass(frozen=True)
class PCRComposite:
    """A selection of PCR indices together with their values.

    Instances are immutable, so the encoding and its digest are memoized
    on first use: quote generation and quote verification both digest the
    same composite (often the very same PCR-17/18 selection, session
    after session), and re-hashing it is pure waste.  The memo key is the
    instance's content — a composite with any differing value is a
    different instance with its own fresh digest.
    """

    values: Tuple[Tuple[int, bytes], ...]  # sorted (index, value) pairs

    @classmethod
    def from_mapping(cls, mapping: Dict[int, bytes]) -> "PCRComposite":
        """Build a composite from an index→value mapping."""
        for index, value in mapping.items():
            if len(value) != 20:
                raise TPMError(f"PCR {index} value must be 20 bytes")
        return cls(values=tuple(sorted(mapping.items())))

    def _memo(self, key: str, compute):
        cached = self.__dict__.get(key)
        if cached is None:
            cached = compute()
            object.__setattr__(self, key, cached)  # frozen dataclass: derived state
        return cached

    def encode(self) -> bytes:
        """TPM_PCR_COMPOSITE-style encoding: selection then values."""
        return self._memo("_encoded", self._encode)

    def _encode(self) -> bytes:
        selection = b"".join(index.to_bytes(2, "big") for index, _ in self.values)
        blob = b"".join(value for _, value in self.values)
        return (
            len(self.values).to_bytes(2, "big")
            + selection
            + len(blob).to_bytes(4, "big")
            + blob
        )

    def digest(self) -> bytes:
        """SHA-1 of the composite encoding (what the quote signs)."""
        return self._memo("_digest", lambda: sha1(self.encode()))

    def as_dict(self) -> Dict[int, bytes]:
        """The composite as a plain mapping."""
        return dict(self.values)


@dataclass(frozen=True)
class Quote:
    """A TPM quote: AIK signature over (composite digest, nonce).

    Verification is a *pure* function of the quote and the AIK public key —
    the verifier needs no access to the TPM (paper §4.4.1).
    """

    composite: PCRComposite
    nonce: bytes
    signature: bytes
    aik_public: RSAPublicKey

    @staticmethod
    def quote_info(composite: PCRComposite, nonce: bytes) -> bytes:
        """The TPM_QUOTE_INFO structure that the AIK signs."""
        if len(nonce) != 20:
            raise TPMError("quote nonce must be 20 bytes (a SHA-1 digest)")
        return _QUOTE_FIXED + composite.digest() + nonce

    def verify(self, expected_aik: RSAPublicKey) -> bool:
        """Check the signature and that it was made by ``expected_aik``."""
        from repro.crypto.pkcs1 import pkcs1_verify_sha1

        if self.aik_public != expected_aik:
            return False
        info = self.quote_info(self.composite, self.nonce)
        return pkcs1_verify_sha1(expected_aik, info, self.signature)


@dataclass(frozen=True)
class SealedBlob:
    """Opaque output of TPM_Seal, handled by *untrusted* software.

    The payload is encrypted and MACed under keys that never leave the TPM;
    ``pcr_policy`` records digestAtRelease — the PCR values required at
    Unseal time.  Untrusted code can store, copy, and (crucially, for the
    replay-attack discussion in §4.3.2) *replay* old blobs, but cannot read
    or undetectably modify them.
    """

    ciphertext: bytes
    mac: bytes
    #: PCR indices the blob is bound to (values live inside the ciphertext;
    #: duplicated here only for diagnostics/pretty-printing).
    bound_pcrs: Tuple[int, ...]

    def authenticated_bytes(self) -> bytes:
        """Everything the MAC must cover: the full framing minus the MAC.

        The fuzzer found (tests/fuzz/corpus/seal-header-tamper.json) that a
        MAC over the ciphertext alone lets untrusted code rewrite the header
        — e.g. the bound-PCR diagnostics — without detection, so the TPM
        MACs the encoded blob up to (but excluding) the MAC field itself.
        """
        pcrs = b"".join(i.to_bytes(2, "big") for i in self.bound_pcrs)
        return (
            len(self.bound_pcrs).to_bytes(2, "big") + pcrs
            + len(self.ciphertext).to_bytes(4, "big") + self.ciphertext
        )

    def encode(self) -> bytes:
        """Serialize for storage by the untrusted OS."""
        return self.authenticated_bytes() + self.mac

    @classmethod
    def decode(cls, data: bytes) -> "SealedBlob":
        """Parse a blob produced by :meth:`encode`."""
        if len(data) < 6:
            raise TPMError("truncated sealed blob")
        count = int.from_bytes(data[:2], "big")
        off = 2
        pcrs = []
        for _ in range(count):
            pcrs.append(int.from_bytes(data[off : off + 2], "big"))
            off += 2
        ct_len = int.from_bytes(data[off : off + 4], "big")
        off += 4
        ciphertext = data[off : off + ct_len]
        mac = data[off + ct_len :]
        if len(ciphertext) != ct_len or len(mac) != 20:
            raise TPMError("malformed sealed blob")
        return cls(ciphertext=ciphertext, mac=mac, bound_pcrs=tuple(pcrs))
