"""Platform Configuration Registers.

TPM v1.2 mandates at least 24 PCRs (paper §2.1).  PCRs 0–16 are *static*:
only a platform reboot resets them (to all zeros).  PCRs 17–23 are
*dynamic*: a reboot sets them to −1 (all 0xFF bytes) so a verifier can
distinguish "rebooted" from "dynamically reset", and only a hardware
command issued by the CPU during SKINIT can reset them to zero (§2.3).
Software can *extend* any PCR but can never write one directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.crypto.sha1 import sha1
from repro.errors import TPMError

#: Number of PCRs in a v1.2 TPM.
PCR_COUNT = 24

#: Indices of the dynamically resettable PCRs.
DYNAMIC_PCRS = tuple(range(17, 24))

#: Digest size of the measurement hash (SHA-1).
DIGEST_SIZE = 20

#: Value of a static PCR after reboot.
PCR_STATIC_BOOT_VALUE = b"\x00" * DIGEST_SIZE

#: Value of a dynamic PCR after reboot (-1: distinguishes reboot from the
#: SKINIT-triggered reset to zero).
PCR_DYNAMIC_BOOT_VALUE = b"\xff" * DIGEST_SIZE

#: Value of a dynamic PCR after the CPU's hardware reset command.
PCR_DYNAMIC_RESET_VALUE = b"\x00" * DIGEST_SIZE


def extend_value(old: bytes, measurement: bytes) -> bytes:
    """The TPM extend operation: SHA-1(old ‖ measurement)."""
    if len(old) != DIGEST_SIZE:
        raise TPMError("PCR value must be 20 bytes")
    if len(measurement) != DIGEST_SIZE:
        raise TPMError("measurement must be a 20-byte SHA-1 digest")
    return sha1(old + measurement)


def simulate_extend_chain(initial: bytes, measurements: Iterable[bytes]) -> bytes:
    """Fold a sequence of measurements into a PCR starting from ``initial``.

    Verifiers use this to recompute the expected final PCR-17 value from an
    event log (paper §4.4.1).
    """
    value = initial
    for m in measurements:
        value = extend_value(value, m)
    return value


class PCRBank:
    """The TPM's bank of 24 PCRs with v1.2 reset semantics."""

    def __init__(self) -> None:
        self._values: List[bytes] = []
        #: Monotonic mutation counter.  Increments on every extend/reset,
        #: including the *hardware* extends SKINIT/TXT apply directly to
        #: the bank — the TPM's idempotent-read cache watches it so those
        #: out-of-band writes invalidate cached PCR reads too.
        self.generation = 0
        self.reboot()

    def _check_index(self, index: int) -> None:
        if not 0 <= index < PCR_COUNT:
            raise TPMError(f"PCR index {index} out of range 0..{PCR_COUNT - 1}")

    def export_values(self) -> List[bytes]:
        """All PCR values in index order (snapshot/clone support)."""
        return list(self._values)

    def restore_values(self, values: List[bytes]) -> None:
        """Install a full bank of values, bumping the generation counter
        (the inverse of :meth:`export_values`)."""
        if len(values) != PCR_COUNT:
            raise TPMError(f"a PCR snapshot must hold {PCR_COUNT} values")
        for value in values:
            if len(value) != DIGEST_SIZE:
                raise TPMError("PCR value must be 20 bytes")
        self.generation += 1
        self._values = [bytes(v) for v in values]

    def reboot(self) -> None:
        """Platform reset: static PCRs to 0, dynamic PCRs to −1."""
        self.generation += 1
        self._values = [
            PCR_DYNAMIC_BOOT_VALUE if i in DYNAMIC_PCRS else PCR_STATIC_BOOT_VALUE
            for i in range(PCR_COUNT)
        ]

    def dynamic_reset(self) -> None:
        """The hardware command the CPU issues during SKINIT: dynamic PCRs
        to zero.  Callers must have verified locality; software paths in
        :class:`repro.tpm.tpm.TPM` enforce that."""
        self.generation += 1
        for i in DYNAMIC_PCRS:
            self._values[i] = PCR_DYNAMIC_RESET_VALUE

    def read(self, index: int) -> bytes:
        """Current value of PCR ``index``."""
        self._check_index(index)
        return self._values[index]

    def extend(self, index: int, measurement: bytes) -> bytes:
        """Extend PCR ``index`` with a 20-byte measurement; returns the new
        value."""
        self._check_index(index)
        self.generation += 1
        self._values[index] = extend_value(self._values[index], measurement)
        return self._values[index]

    def snapshot(self, indices: Iterable[int]) -> Dict[int, bytes]:
        """Copy of selected PCR values (used to build composites)."""
        return {i: self.read(i) for i in indices}
