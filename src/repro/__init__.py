"""Flicker reproduction: minimal-TCB isolated execution (EuroSys 2008).

This package reproduces *Flicker: An Execution Infrastructure for TCB
Minimization* (McCune, Parno, Perrig, Reiter, Isozaki) on a fully
simulated platform: an SVM-capable CPU with the SKINIT late-launch
instruction, a TPM v1.2, and an untrusted Linux-like kernel — all
implemented from scratch in Python with a virtual-time cost model
calibrated from the paper's own measurements.

Quick start::

    from repro import FlickerPlatform, PAL

    class HelloPAL(PAL):
        name = "hello"
        def run(self, ctx):
            ctx.write_output(b"Hello, world")

    platform = FlickerPlatform()
    result = platform.execute_pal(HelloPAL(), inputs=b"")
    assert result.outputs == b"Hello, world"

Layer map:

* :mod:`repro.sim` — virtual clock, calibrated timing profiles, RNG, trace
* :mod:`repro.crypto` — from-scratch SHA-1/SHA-512/MD5/HMAC/AES/RC4/RSA/
  PKCS#1/md5crypt
* :mod:`repro.hw` — CPU, memory, DEV, APIC, SKINIT, machine assembly
* :mod:`repro.tpm` — PCRs, Quote, Seal/Unseal, NV, counters, Privacy CA
* :mod:`repro.osim` — the untrusted OS, sysfs, drivers, storage, network,
  and the adversary toolkit
* :mod:`repro.core` — the Flicker architecture itself
* :mod:`repro.apps` — the paper's four applications
"""

from repro.core import (
    PAL,
    PALContext,
    FlickerPlatform,
    SessionResult,
    FlickerVerifier,
    Attestation,
    SLBImage,
    build_slb,
)
from repro.hw import Machine
from repro.sim import (
    BROADCOM_BCM0102,
    INFINEON_1_2,
    TimingProfile,
    VirtualClock,
)
from repro.sim.timing import DEFAULT_PROFILE, INFINEON_PROFILE

__version__ = "1.0.0"

__all__ = [
    "PAL",
    "PALContext",
    "FlickerPlatform",
    "SessionResult",
    "FlickerVerifier",
    "Attestation",
    "SLBImage",
    "build_slb",
    "Machine",
    "VirtualClock",
    "TimingProfile",
    "BROADCOM_BCM0102",
    "INFINEON_1_2",
    "DEFAULT_PROFILE",
    "INFINEON_PROFILE",
    "__version__",
]
