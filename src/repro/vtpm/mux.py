"""The vTPM multiplexer: many mutually-distrusting tenants, one chip.

PAPERS.md's simTPM and the Berger et al. vTPM line show the layer this
module adds to the Flicker platform: per-tenant virtual TPM instances
(:class:`repro.vtpm.instance.VirtualTPM`) multiplexed over the single
hardware TPM model, with the multiplexer itself running in the untrusted
OS — **outside** every PAL's TCB (the static audit in
:mod:`repro.analysis.tcb` forbids ``repro.vtpm`` from the TCB closure).

What stays hardware-backed:

* The tenant's session chain.  A tenant's Flicker session runs on the
  real machine — SKINIT, hardware PCR 17, the SLB Core's extends.  The
  multiplexer then mirrors that session's event log into the tenant's
  *virtual* PCR 17, so a quote over the virtual register attests the
  same chain :func:`repro.core.attestation.expected_pcr17` predicts.
* Key roots.  Each tenant's RNG stream forks off the machine RNG, and
  the tenant's AIK is enrolled with the platform's real Privacy CA
  (label ``<platform>/tenant/<name>``), so existing verifiers validate
  tenant attestations with no changes.
* Monotonic-counter partitioning.  Tenant-bound hardware interfaces
  (:meth:`repro.tpm.tpm.TPM.interface`) enforce the counter partition
  at the chip; the instance's virtual counters carry the same
  ``owner_tenant`` tag so the partition survives migration.

Migration: :meth:`VTPMMultiplexer.export_tenant` emits a plain-dict
snapshot (riding the same snapshot idiom as
:meth:`repro.tpm.tpm.TPM.export_state`); importing it on another
machine's multiplexer resumes the tenant there — same keys, same virtual
PCRs, same counters, same sealed-storage namespace.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.attestation import Attestation
from repro.errors import VTPMError
from repro.sim.timing import (
    BROADCOM_BCM0102,
    INFINEON_1_2,
    SIMTPM_MOBILE,
    TPMTimings,
)
from repro.tpm.privacy_ca import AIKCertificate
from repro.tpm.tpm import LOCALITY_OS
from repro.vtpm.instance import VirtualTPM

#: Named per-tenant latency scenarios: the paper's discrete chips vs a
#: simTPM-class mobile secure element.
TENANT_SCENARIOS: Dict[str, TPMTimings] = {
    "discrete": BROADCOM_BCM0102,
    "infineon": INFINEON_1_2,
    "mobile": SIMTPM_MOBILE,
}

#: Version tag carried by migration snapshots.
MIGRATION_SCHEMA = "repro-vtpm-migration/1"


class VTPMMultiplexer:
    """Per-platform vTPM multiplexer over one hardware TPM.

    Obtain one via :attr:`repro.core.session.FlickerPlatform.vtpm` — the
    platform creates it lazily, so single-tenant deployments never pay
    for (or perturb) anything.
    """

    def __init__(self, platform) -> None:
        self._platform = platform
        machine = platform.machine
        self._machine = machine
        self._rng = machine.rng.fork("vtpm-mux")
        self._tenants: Dict[str, VirtualTPM] = {}
        self._certs: Dict[str, AIKCertificate] = {}
        self._hw_interfaces: Dict[str, object] = {}
        self._last_session: Dict[str, object] = {}

    # -- tenant lifecycle -----------------------------------------------------

    @property
    def tenants(self):
        """Resident tenant names, sorted."""
        return tuple(sorted(self._tenants))

    def create_tenant(self, name: str, scenario: str = "discrete",
                      timings: Optional[TPMTimings] = None) -> VirtualTPM:
        """Provision a fresh tenant instance on this machine.

        ``scenario`` picks the tenant's latency profile from
        :data:`TENANT_SCENARIOS`; pass ``timings`` to use a custom one.
        """
        if name in self._tenants:
            raise VTPMError(f"tenant {name!r} already exists on this machine")
        if timings is None:
            try:
                timings = TENANT_SCENARIOS[scenario]
            except KeyError:
                raise VTPMError(
                    f"unknown tenant latency scenario {scenario!r} "
                    f"(known: {', '.join(sorted(TENANT_SCENARIOS))})"
                ) from None
        vt = VirtualTPM(
            tenant=name,
            rng=self._rng.fork(f"tenant:{name}"),
            timings=timings,
            clock=self._machine.clock,
            trace=self._machine.trace,
            obs=self._machine.obs,
        )
        self._register(vt)
        return vt

    def _register(self, vt: VirtualTPM) -> None:
        self._tenants[vt.tenant] = vt
        # A tenant-bound hardware interface: the chip itself enforces the
        # per-tenant counter partition for anything the tenant drives
        # directly against hardware NV.
        self._hw_interfaces[vt.tenant] = self._machine.tpm.interface(
            LOCALITY_OS, tenant=vt.tenant)

    def tenant(self, name: str) -> VirtualTPM:
        """The named tenant's instance; :class:`VTPMError` if absent."""
        try:
            return self._tenants[name]
        except KeyError:
            raise VTPMError(
                f"no tenant {name!r} on this machine "
                f"(resident: {', '.join(self.tenants) or 'none'})"
            ) from None

    def hardware_interface(self, name: str):
        """The tenant's tenant-bound hardware TPM interface."""
        self.tenant(name)
        return self._hw_interfaces[name]

    def remove_tenant(self, name: str) -> None:
        """Evict a tenant (the destructive half of a migration)."""
        self.tenant(name)
        del self._tenants[name]
        del self._hw_interfaces[name]
        self._certs.pop(name, None)
        self._last_session.pop(name, None)

    # -- sessions and attestation ---------------------------------------------

    def record_session(self, name: str, session) -> None:
        """Mirror a completed hardware session into the tenant's virtual
        PCR 17: virtual dynamic reset, then the session's event-log
        extends, in order.  Called by the platform after every session
        executed with ``tenant=name``."""
        vt = self.tenant(name)
        vt.dynamic_reset()
        for _label, measurement in session.event_log:
            vt.pcr_extend(17, measurement)
        self._last_session[name] = session

    def aik_certificate(self, name: str) -> AIKCertificate:
        """The tenant's AIK certificate, enrolled lazily against the
        platform's Privacy CA (same flow as the tqd's platform AIK)."""
        if name not in self._certs:
            vt = self.tenant(name)
            ca = self._platform.privacy_ca
            ca.register_ek(vt.ek_public)
            label = f"{self._platform.platform_label}/tenant/{name}"
            self._certs[name] = ca.issue(vt.aik_public, vt.ek_public, label)
        return self._certs[name]

    def attest(self, name: str, nonce: bytes, session=None) -> Attestation:
        """Answer a challenge for the tenant's most recent session with a
        quote over the *virtual* PCR 17, signed by the tenant AIK."""
        vt = self.tenant(name)
        target = session or self._last_session.get(name)
        if target is None:
            raise VTPMError(f"tenant {name!r} has no session to attest")
        if target.tenant != name:
            raise VTPMError(
                f"session belongs to tenant {target.tenant!r}, "
                f"not {name!r} — refusing cross-tenant attestation"
            )
        quote = vt.quote(nonce, (17,))
        return Attestation(
            quote=quote,
            aik_certificate=self.aik_certificate(name),
            event_log=target.event_log,
            inputs=target.inputs,
            outputs=target.outputs,
            nonce=nonce,
        )

    # -- migration ------------------------------------------------------------

    def export_tenant(self, name: str) -> Dict[str, object]:
        """The tenant's migration snapshot (non-destructive; pair with
        :meth:`remove_tenant` for a move rather than a copy)."""
        vt = self.tenant(name)
        return {
            "schema": MIGRATION_SCHEMA,
            "tenant": name,
            "vtpm": vt.export_state(),
        }

    def import_tenant(self, snapshot: Dict[str, object]) -> VirtualTPM:
        """Resume a migrated tenant on this machine."""
        if not isinstance(snapshot, dict) or "vtpm" not in snapshot:
            raise VTPMError("malformed vTPM migration snapshot: no payload")
        if snapshot.get("schema") != MIGRATION_SCHEMA:
            raise VTPMError(
                f"unsupported migration snapshot schema "
                f"{snapshot.get('schema')!r} (expected {MIGRATION_SCHEMA})"
            )
        name = snapshot.get("tenant")
        if name in self._tenants:
            raise VTPMError(
                f"tenant {name!r} already resident — refusing to overwrite"
            )
        vt = VirtualTPM.from_state(snapshot["vtpm"], self._machine.clock,
                                   self._machine.trace, self._machine.obs)
        self._register(vt)
        return vt


def migrate_tenant(source_platform, destination_platform,
                   name: str) -> VirtualTPM:
    """Move a tenant between two platforms: export, evict, import.

    The tenant's next attestation on the destination chains to the same
    AIK certificate, so verifiers see one continuous tenant identity.
    """
    snapshot = source_platform.vtpm.export_tenant(name)
    source_platform.vtpm.remove_tenant(name)
    return destination_platform.vtpm.import_tenant(snapshot)


__all__ = [
    "MIGRATION_SCHEMA",
    "TENANT_SCENARIOS",
    "VTPMMultiplexer",
    "migrate_tenant",
]
