"""One tenant's virtual TPM instance.

A :class:`VirtualTPM` is pure software state owned by the multiplexer
(:mod:`repro.vtpm.mux`): a virtual PCR bank, a per-tenant key hierarchy
(EK/AIK generated lazily from the tenant's dedicated RNG stream),
per-tenant symmetric storage keys for the sealed-storage namespace, and
per-tenant monotonic counters.  Nothing here is trusted by a PAL — the
instance lives in the untrusted OS alongside the tqd, outside the PAL
TCB closure (:mod:`repro.analysis.tcb` enforces that).

Every command charges the *tenant's* latency profile — a discrete chip
for one tenant, a simTPM-class mobile secure element for another
(:data:`repro.sim.timing.SIMTPM_MOBILE`) — onto the host machine's
virtual clock, and emits a tenant-tagged trace event, so multi-tenant
reports decompose per tenant exactly as single-tenant reports decompose
per TPM op.

The whole instance exports to (and restores from) a plain dict — the
migration payload moved between fleet machines by
:meth:`repro.vtpm.mux.VTPMMultiplexer.export_tenant`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.crypto.aes import AES128
from repro.crypto.hmac import constant_time_equal, hmac_sha1
from repro.crypto.pkcs1 import pkcs1_sign_sha1
from repro.crypto.rsa import RSAKeyPair, generate_rsa_keypair
from repro.errors import VTPMError
from repro.sim.rng import DeterministicRNG
from repro.sim.timing import TPMTimings
from repro.tpm.nvram import MonotonicCounter, check_pcr_policy
from repro.tpm.pcr import PCRBank
from repro.tpm.structures import PCRComposite, Quote, SealedBlob
from repro.tpm.tpm import TPM

#: Default modulus size for tenant keys (same rationale as the hardware
#: TPM's :data:`repro.tpm.tpm.DEFAULT_KEY_BITS`).
DEFAULT_TENANT_KEY_BITS = 512


class VirtualTPM:
    """A single tenant's TPM-shaped state, multiplexed over one chip."""

    def __init__(
        self,
        tenant: str,
        rng: DeterministicRNG,
        timings: TPMTimings,
        clock,
        trace,
        key_bits: int = DEFAULT_TENANT_KEY_BITS,
        obs=None,
    ) -> None:
        self.tenant = tenant
        self.timings = timings
        self._clock = clock
        self._trace = trace
        self.obs = obs
        self._rng = rng
        self._key_bits = key_bits
        # Same lazy-keygen pattern as the hardware TPM: fork the key
        # streams eagerly (stream positions never depend on whether a key
        # was generated yet), generate on first use.
        self._key_rngs = {
            name: self._rng.fork(f"key:{name}") for name in ("ek", "aik")
        }
        self._keys: Dict[str, RSAKeyPair] = {}
        # Per-tenant sealed-storage keys.  They live in vTPM state — not
        # in the hardware chip — precisely so sealed blobs survive
        # migration to a different physical TPM.
        self._storage_key = self._rng.bytes(16)
        self._storage_mac_key = self._rng.bytes(20)
        self.pcrs = PCRBank()
        self._counters: Dict[int, MonotonicCounter] = {}
        self._next_counter_id = 1

    # -- plumbing -------------------------------------------------------------

    def _charge(self, ms: float, op: str, **detail) -> None:
        self._clock.advance(ms)
        self._trace.emit(self._clock.now(), "vtpm", op,
                         tenant=self.tenant, **detail)
        obs = self.obs
        if obs is not None:
            charged = ms * self._clock.skew
            obs.record_complete(f"vtpm:{op}", category="vtpm",
                                duration_ms=charged, op=op,
                                tenant=self.tenant)
            obs.registry.counter(
                "vtpm_commands_total", "vTPM commands issued"
            ).inc(op=op, tenant=self.tenant)

    # -- key hierarchy --------------------------------------------------------

    def _key(self, name: str) -> RSAKeyPair:
        if name not in self._keys:
            self._keys[name] = generate_rsa_keypair(
                self._key_bits, self._key_rngs[name])
        return self._keys[name]

    @property
    def ek_public(self):
        """Tenant endorsement key public half."""
        return self._key("ek").public

    @property
    def aik_public(self):
        """Tenant attestation identity key public half."""
        return self._key("aik").public

    # -- virtual PCR bank -----------------------------------------------------

    def dynamic_reset(self) -> None:
        """Reset the virtual dynamic PCRs — the multiplexer's mirror of
        the hardware reset that opened the tenant's Flicker session."""
        self.pcrs.dynamic_reset()
        self._charge(0.0, "dynamic_pcr_reset")

    def pcr_read(self, index: int) -> bytes:
        """Read a virtual PCR."""
        self._charge(self.timings.pcr_read_ms, "pcr_read", pcr=index)
        return self.pcrs.read(index)

    def pcr_extend(self, index: int, measurement: bytes) -> bytes:
        """Extend a virtual PCR with a 20-byte measurement."""
        value = self.pcrs.extend(index, measurement)
        self._charge(self.timings.extend_ms, "pcr_extend", pcr=index,
                     measurement=measurement.hex())
        return value

    def quote(self, nonce: bytes, pcr_indices: Iterable[int]) -> Quote:
        """Sign the selected *virtual* PCRs with the tenant AIK.

        Structurally identical to a hardware quote, so
        :class:`repro.core.attestation.FlickerVerifier` verifies it
        unchanged once the tenant's AIK certificate chains to the same
        Privacy CA.
        """
        indices = tuple(sorted(set(pcr_indices)))
        composite = PCRComposite.from_mapping(self.pcrs.snapshot(indices))
        info = Quote.quote_info(composite, nonce)
        signature = pkcs1_sign_sha1(self._key("aik").private, info)
        self._charge(self.timings.quote_ms, "quote", pcrs=list(indices),
                     nonce=nonce.hex())
        return Quote(composite=composite, nonce=nonce, signature=signature,
                     aik_public=self._key("aik").public)

    # -- sealed-storage namespace ---------------------------------------------

    def seal(self, data: bytes, pcr_policy: Dict[int, bytes]) -> SealedBlob:
        """Seal ``data`` into this tenant's namespace.

        The policy binds to *virtual* PCR values.  The payload framing is
        the hardware TPM's, but the keys are per-tenant: no other
        tenant's instance (and no other tenant's namespace on any
        machine) can authenticate or decrypt the blob.
        """
        payload = TPM._encode_sealed_payload(pcr_policy, data)
        iv = self._rng.bytes(16)
        ciphertext = iv + AES128(self._storage_key).encrypt_cbc(payload, iv)
        blob = SealedBlob(ciphertext=ciphertext, mac=b"\x00" * 20,
                          bound_pcrs=tuple(sorted(pcr_policy)))
        mac = hmac_sha1(self._storage_mac_key, blob.authenticated_bytes())
        self._charge(self.timings.seal_ms(len(data)), "seal",
                     nbytes=len(data), pcrs=sorted(pcr_policy))
        return SealedBlob(ciphertext=ciphertext, mac=mac,
                          bound_pcrs=blob.bound_pcrs)

    def unseal(self, blob: SealedBlob) -> bytes:
        """Release sealed data iff the blob belongs to this tenant's
        namespace and the virtual PCR policy matches.

        A blob sealed by any other tenant fails the MAC under this
        tenant's keys and is rejected with a :class:`VTPMError` that
        names no plaintext.
        """
        expected_mac = hmac_sha1(self._storage_mac_key,
                                 blob.authenticated_bytes())
        if not constant_time_equal(expected_mac, blob.mac):
            raise VTPMError(
                f"unseal denied: blob is not in tenant {self.tenant!r}'s "
                "sealed-storage namespace"
            )
        iv, body = blob.ciphertext[:16], blob.ciphertext[16:]
        payload = AES128(self._storage_key).decrypt_cbc(body, iv)
        policy, data = TPM._decode_sealed_payload(payload)
        check_pcr_policy(policy, self.pcrs.read,
                         f"vTPM Unseal (tenant {self.tenant})")
        self._charge(self.timings.unseal_ms(len(data)), "unseal",
                     nbytes=len(data))
        return data

    # -- monotonic counters ---------------------------------------------------

    def create_counter(self, label: bytes) -> int:
        """Create a counter in this tenant's partition; returns its id."""
        counter = MonotonicCounter(counter_id=self._next_counter_id,
                                   label=label, owner_tenant=self.tenant)
        self._counters[counter.counter_id] = counter
        self._next_counter_id += 1
        self._charge(self.timings.nv_op_ms, "counter_create",
                     counter=counter.counter_id)
        return counter.counter_id

    def _counter(self, counter_id: int) -> MonotonicCounter:
        try:
            return self._counters[counter_id]
        except KeyError:
            raise VTPMError(
                f"tenant {self.tenant!r} has no counter {counter_id}"
            ) from None

    def increment_counter(self, counter_id: int) -> int:
        """Advance a tenant counter; returns the new value."""
        value = self._counter(counter_id).increment()
        self._charge(self.timings.nv_op_ms, "counter_increment",
                     counter=counter_id, value=value)
        return value

    def read_counter(self, counter_id: int) -> int:
        """Read a tenant counter."""
        self._charge(self.timings.pcr_read_ms, "counter_read",
                     counter=counter_id)
        return self._counter(counter_id).value

    # -- migration ------------------------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """The migration payload: everything needed to resume this
        tenant on another machine, including the RNG stream positions of
        keys not generated yet (the destination derives the *same* keys
        on demand, so an attestation after migration chains to the same
        AIK certificate)."""
        return {
            "tenant": self.tenant,
            "timings": self.timings,
            "key_bits": self._key_bits,
            "keys": dict(self._keys),
            "key_rng_states": {
                name: child.getstate()
                for name, child in self._key_rngs.items()
            },
            "rng_state": self._rng.getstate(),
            "storage_key": self._storage_key,
            "storage_mac_key": self._storage_mac_key,
            "pcr_values": self.pcrs.export_values(),
            "counters": {
                cid: MonotonicCounter(counter_id=c.counter_id, label=c.label,
                                      value=c.value,
                                      owner_tenant=c.owner_tenant)
                for cid, c in self._counters.items()
            },
            "next_counter_id": self._next_counter_id,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object], clock, trace,
                   obs=None) -> "VirtualTPM":
        """Reconstruct an instance from :meth:`export_state` output on
        the destination machine (its clock/trace/observability)."""
        try:
            vt = cls.__new__(cls)
            vt.tenant = state["tenant"]
            vt.timings = state["timings"]
            vt._clock = clock
            vt._trace = trace
            vt.obs = obs
            vt._key_bits = state["key_bits"]
            vt._keys = dict(state["keys"])
            vt._key_rngs = {}
            for name, rng_state in state["key_rng_states"].items():
                child = DeterministicRNG()
                child.setstate(rng_state)
                vt._key_rngs[name] = child
            vt._rng = DeterministicRNG()
            vt._rng.setstate(state["rng_state"])
            vt._storage_key = state["storage_key"]
            vt._storage_mac_key = state["storage_mac_key"]
            vt.pcrs = PCRBank()
            vt.pcrs.restore_values(state["pcr_values"])
            vt._counters = {
                cid: MonotonicCounter(counter_id=c.counter_id, label=c.label,
                                      value=c.value,
                                      owner_tenant=c.owner_tenant)
                for cid, c in state["counters"].items()
            }
            vt._next_counter_id = state["next_counter_id"]
        except (KeyError, AttributeError, TypeError) as exc:
            raise VTPMError(f"malformed vTPM migration snapshot: {exc}") from exc
        return vt


__all__ = ["DEFAULT_TENANT_KEY_BITS", "VirtualTPM"]
