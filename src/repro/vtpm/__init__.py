"""vTPM multiplexing: per-tenant virtual TPMs over one hardware chip.

The missing layer between Flicker's one-tenant-per-TPM model and shared
hardware at fleet scale (PAPERS.md: simTPM; Berger et al. vTPM).  See
docs/VTPM.md for the tenant model, the migration protocol, and the TCB
argument — the whole package is untrusted OS-side software, enforced
outside the PAL TCB closure by :mod:`repro.analysis.tcb`.
"""

from repro.vtpm.instance import DEFAULT_TENANT_KEY_BITS, VirtualTPM
from repro.vtpm.mux import (
    MIGRATION_SCHEMA,
    TENANT_SCENARIOS,
    VTPMMultiplexer,
    migrate_tenant,
)

__all__ = [
    "DEFAULT_TENANT_KEY_BITS",
    "MIGRATION_SCHEMA",
    "TENANT_SCENARIOS",
    "VTPMMultiplexer",
    "VirtualTPM",
    "migrate_tenant",
]
