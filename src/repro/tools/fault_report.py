"""Render a fault-campaign JSON report as tables:
``python -m repro.tools.fault_report report.json`` (or pipe the campaign's
stdout straight in with ``-``).

Summarizes outcome classes per app and lists the individual non-``ok``
cells with the faults that fired, so a failing seed can be picked out and
replayed (``python -m repro.faults.campaign --replay <seed> --app <app>``).
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Iterable, List, Optional, Sequence

from repro.faults.campaign import APPS, OUTCOMES


def _table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [tuple(str(c) for c in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = [f"\n## {title}", sep]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append(sep)
    return "\n".join(lines)


def _fired_summary(record: Dict) -> str:
    parts = []
    for fault in record["faults_fired"]:
        op = fault.get("op", "")
        parts.append(fault["kind"] + (f"({op})" if op else "")
                     + f"@s{fault['session']}")
    return " ".join(parts) or "-"


def format_report(report: Dict) -> str:
    """The human-readable rendering of a campaign report."""
    results = report["results"]
    apps = report["campaign"].get("apps", list(APPS))
    by_app = {
        app: {outcome: 0 for outcome in OUTCOMES} for app in apps
    }
    for record in results:
        by_app[record["app"]][record["outcome"]] += 1
    sections = [
        _table(
            "Outcome classes per application",
            ("app", *OUTCOMES),
            [(app, *(by_app[app][o] for o in OUTCOMES)) for app in apps],
        )
    ]
    notable = [r for r in results if r["outcome"] != "ok"]
    if notable:
        sections.append(
            _table(
                "Non-ok cells (replay with --replay <seed> --app <app>)",
                ("seed", "app", "outcome", "retries", "faults fired"),
                [
                    (r["seed"], r["app"], r["outcome"], r["retries"],
                     _fired_summary(r))
                    for r in notable
                ],
            )
        )
    leaked = report["summary"]["secret_leaked"]
    verdict = (
        "secret-leaked = 0 — the paper's isolation guarantees held"
        if leaked == 0
        else f"SECRET LEAKS: {leaked} — simulation invariant violated"
    )
    sections.append(f"\n{report['summary']['runs']} runs; {verdict}\n")
    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        if argv[0] == "-":
            report = json.load(sys.stdin)
        else:
            with open(argv[0], "r", encoding="utf-8") as handle:
                report = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read report {argv[0]!r}: {exc}", file=sys.stderr)
        return 2
    print(format_report(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
