"""Aggregate one instrumented run: ``python -m repro.tools.obs_report``.

Runs one application workload (default: the §7.4.2 certificate authority)
on an observability-enabled platform and rebuilds the paper's quantitative
views **from the recorded spans and metrics alone** — no access to
``SessionResult`` internals:

* the Figure 2 per-phase breakdown of the final session,
* the Table 1 / Figure 8 style per-TPM-command latency aggregation,
* the platform counters (sessions, retries, SKINITs, DEV activity).

Because everything is virtual time under a fixed seed, the report — and
the optional ``--jsonl`` / ``--chrome`` exports — are byte-identical
across runs, which the observability test suite pins down.

Usage::

    python -m repro.tools.obs_report                    # CA, seed 2008
    python -m repro.tools.obs_report --app ssh --seed 7
    python -m repro.tools.obs_report --chrome trace.json  # open in Perfetto
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.session import FlickerPlatform, SessionResult
from repro.obs import export_chrome_trace, export_jsonl
from repro.obs.spans import ObservabilityHub, Span

#: Default platform seed (the paper's publication year, as elsewhere).
DEFAULT_SEED = 2008


def run_instrumented(app: str = "ca", seed: int = DEFAULT_SEED) -> FlickerPlatform:
    """Run one workload end to end on an observability-enabled platform."""
    from repro.faults.campaign import DRIVERS

    if app not in DRIVERS:
        raise ValueError(f"unknown app {app!r} (choose from {tuple(DRIVERS)})")
    platform = FlickerPlatform(seed=seed, observability=True)
    DRIVERS[app](platform)
    return platform


def session_spans(hub: ObservabilityHub) -> List[Span]:
    """The top-level ``session`` spans, in completion order."""
    return hub.find_spans(name="session", category="session")


def phase_breakdown(hub: ObservabilityHub, session_index: int = -1) -> Dict[str, float]:
    """Figure 2 phase totals of one session, computed from spans alone.

    Sums the durations of every descendant span of the chosen ``session``
    span whose name is a canonical Figure 2 phase.  For a fault-free
    session this reproduces ``SessionResult.phase_ms`` exactly (modulo
    float associativity), which the obs test suite asserts.
    """
    sessions = session_spans(hub)
    if not sessions:
        raise ValueError("no session spans recorded — was observability enabled?")
    target = sessions[session_index]
    totals: Dict[str, float] = {}
    for span in hub.descendants(target):
        if span.name in SessionResult.FIGURE2_PHASES:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration_ms
    return totals


def tpm_breakdown(hub: ObservabilityHub) -> List[Tuple[str, int, float, float]]:
    """Per-TPM-command ``(op, count, total_ms, mean_ms)`` rows, sorted by
    total time descending — the Figure 8 'TPM dominates' view."""
    histogram = hub.registry.get("tpm_command_ms")
    if histogram is None:
        return []
    rows = []
    for sample in histogram._samples():
        op = sample["labels"]["op"]
        count, total = sample["count"], sample["sum"]
        rows.append((op, count, total, total / count if count else 0.0))
    rows.sort(key=lambda r: (-r[2], r[0]))
    return rows


def counter_rows(hub: ObservabilityHub) -> List[Tuple[str, float]]:
    """Flattened ``name{labels}`` → value rows for every counter."""
    rows = []
    for sample in hub.registry.snapshot():
        if sample["kind"] != "counter":
            continue
        labels = ",".join(f"{k}={v}" for k, v in sorted(sample["labels"].items()))
        name = f"{sample['name']}{{{labels}}}" if labels else sample["name"]
        rows.append((name, sample["value"]))
    return rows


def build_report(platform: FlickerPlatform, app: str, seed: int) -> str:
    """The aggregated plain-text report for one instrumented run."""
    hub = platform.obs
    lines = [
        f"# Observability report — app={app} seed={seed}",
        f"(spans: {len(hub.spans)}, events: {len(hub.events)}, "
        f"sessions: {len(session_spans(hub))}; all times virtual ms)",
        "",
        "## Figure 2 phase breakdown (final session, from spans alone)",
    ]
    phases = phase_breakdown(hub)
    for phase in SessionResult.FIGURE2_PHASES:
        if phase in phases:
            lines.append(f"  {phase:<12} {phases[phase]:9.3f} ms")
    final = session_spans(hub)[-1]
    lines.append(f"  {'TOTAL':<12} {final.duration_ms:9.3f} ms")

    lines += ["", "## TPM command latencies (from metrics)"]
    lines.append(f"  {'op':<14} {'count':>5} {'total ms':>10} {'mean ms':>9}")
    for op, count, total, mean in tpm_breakdown(hub):
        lines.append(f"  {op:<14} {count:>5} {total:>10.3f} {mean:>9.3f}")

    lines += ["", "## Counters"]
    for name, value in counter_rows(hub):
        lines.append(f"  {name} = {value:g}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.obs_report",
        description="Aggregate an instrumented run into the paper's views.",
    )
    parser.add_argument("--app", default="ca",
                        help="workload: ca, ssh, rootkit, distributed")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"platform seed (default {DEFAULT_SEED})")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="also write the full span/metric JSONL export")
    parser.add_argument("--chrome", metavar="PATH",
                        help="also write a Chrome trace_event file "
                             "(open in Perfetto / chrome://tracing)")
    args = parser.parse_args(argv)

    try:
        platform = run_instrumented(args.app, args.seed)
    except ValueError as exc:
        parser.error(str(exc))
    print(build_report(platform, args.app, args.seed))
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(export_jsonl(platform.obs))
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            handle.write(export_chrome_trace(platform.obs,
                                             platform.machine.trace))
    return 0


if __name__ == "__main__":
    sys.exit(main())
