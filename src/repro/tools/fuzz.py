"""Fuzzer driver: ``python -m repro.tools.fuzz``.

Front-end over :mod:`repro.fuzz` — the coverage-guided adversarial
fuzzer for the Flicker security surface.

Usage::

    python -m repro.tools.fuzz --smoke                # CI gate (<60s)
    python -m repro.tools.fuzz --campaign --executions 5000 --workers 4
    python -m repro.tools.fuzz --replay tests/fuzz/corpus/foo.json
    python -m repro.tools.fuzz --minimize finding.json
    python -m repro.tools.fuzz --campaign --json --out report.json

``--smoke`` runs a small fixed-seed campaign plus a full corpus replay
and exits 1 on any surviving counterexample or corpus regression —
that's the CI contract.  ``--campaign`` writes the canonical report
(byte-identical for a given seed at any ``--workers``).  ``--replay``
re-executes one corpus entry and checks its recorded verdict;
``--minimize`` shrinks a counterexample case file in place of your
eyeballs.  Exit codes: 0 clean, 1 findings/regression, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.fuzz.case import TARGETS, FuzzCase
from repro.fuzz.corpus import CorpusEntry, default_corpus_dir, load_corpus
from repro.fuzz.engine import DEFAULT_SHARDS, FuzzCampaign, edge_monotonicity
from repro.fuzz.minimize import minimize_case
from repro.fuzz.targets import run_case

SMOKE_SEED = 2008
SMOKE_EXECUTIONS = 120


def _print(args, payload: dict, text: str) -> None:
    if args.json:
        print(json.dumps(payload, sort_keys=True, indent=2))
    else:
        print(text)


def _campaign(args) -> int:
    campaign = FuzzCampaign(
        seed=args.seed,
        executions=args.executions,
        targets=tuple(args.targets),
        shards=args.shards,
        workers=args.workers,
    )
    report = campaign.run()
    rendered = FuzzCampaign.report_json(report)
    if args.out:
        Path(args.out).write_text(rendered)
    if args.json:
        sys.stdout.write(rendered)
    else:
        cov = report["coverage"]
        execs = report["executions"]
        print(f"fuzz campaign: seed={args.seed} executions={execs['total']} "
              f"rejected={execs['rejected']}")
        print(f"coverage: {cov['edges']} edges over {len(cov['modules'])} "
              f"TCB modules (digest {cov['digest'][:12]})")
        print(f"monotone coverage growth: {edge_monotonicity(report)}")
        for finding in report["counterexamples"]:
            print(f"COUNTEREXAMPLE [{finding['oracle']}] {finding['detail']}")
        print(f"counterexamples: {report['summary']['counterexamples']}")
    return 0 if report["summary"]["clean"] else 1


def _replay_corpus(corpus_dir: Path, args) -> int:
    failures = []
    entries = load_corpus(corpus_dir)
    for entry in entries:
        holds, live = entry.replay()
        if not holds:
            failures.append((entry, live))
    payload = {
        "corpus": str(corpus_dir),
        "entries": len(entries),
        "regressions": [
            {"name": entry.name, "verdict": entry.verdict,
             "expected_oracle": entry.oracle, "live": live.to_dict()}
            for entry, live in failures
        ],
    }
    lines = [f"corpus replay: {len(entries)} entries from {corpus_dir}"]
    for entry, live in failures:
        lines.append(
            f"REGRESSION {entry.name}: recorded verdict '{entry.verdict}' "
            f"no longer holds (live: {live.status}/{live.oracle or '-'})"
        )
    lines.append("corpus clean" if not failures
                 else f"{len(failures)} corpus regression(s)")
    _print(args, payload, "\n".join(lines))
    return 0 if not failures else 1


def _smoke(args) -> int:
    campaign_rc = _campaign(argparse.Namespace(
        seed=SMOKE_SEED, executions=SMOKE_EXECUTIONS, targets=list(TARGETS),
        shards=DEFAULT_SHARDS, workers=args.workers, out=args.out,
        json=args.json,
    ))
    corpus_rc = _replay_corpus(Path(args.corpus or default_corpus_dir()), args)
    return max(campaign_rc, corpus_rc)


def _replay_one(path: Path, args) -> int:
    data = json.loads(path.read_text())
    if isinstance(data, dict) and data.get("format"):
        entry = CorpusEntry.from_dict(data)
        holds, live = entry.replay()
        payload = {"name": entry.name, "verdict": entry.verdict,
                   "holds": holds, "live": live.to_dict()}
        _print(args, payload,
               f"{entry.name}: verdict '{entry.verdict}' "
               f"{'holds' if holds else 'REGRESSED'} "
               f"(live: {live.status}/{live.oracle or '-'}: {live.detail})")
        return 0 if holds else 1
    case = FuzzCase.from_dict(data)
    live = run_case(case)
    _print(args, {"case": case.to_dict(), "result": live.to_dict()},
           f"{case.target}: {live.status}/{live.oracle or '-'}: {live.detail}")
    return 0 if live.status != "counterexample" else 1


def _minimize(path: Path, args) -> int:
    data = json.loads(path.read_text())
    case = (CorpusEntry.from_dict(data).case
            if isinstance(data, dict) and data.get("format")
            else FuzzCase.from_dict(data))
    result = run_case(case)
    if result.status != "counterexample":
        _print(args, {"case": case.to_dict(), "result": result.to_dict()},
               f"not a counterexample ({result.status}); nothing to minimize")
        return 0
    small, small_result = minimize_case(case, result)
    payload = {"case": small.to_dict(), "oracle": small_result.oracle,
               "detail": small_result.detail}
    if args.out:
        Path(args.out).write_text(small.to_json())
    _print(args, payload,
           f"minimized {len(case.to_json())} -> {len(small.to_json())} bytes "
           f"[{small_result.oracle}]\n{small.to_json()}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.fuzz",
        description="Coverage-guided fuzzer over the Flicker security surface",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--smoke", action="store_true",
                      help="bounded fixed-seed campaign + corpus replay (CI gate)")
    mode.add_argument("--campaign", action="store_true",
                      help="full campaign with the given seed/budget")
    mode.add_argument("--replay", metavar="PATH",
                      help="re-execute one corpus entry or raw case file")
    mode.add_argument("--minimize", metavar="PATH",
                      help="shrink a counterexample case file")
    parser.add_argument("--seed", type=int, default=SMOKE_SEED)
    parser.add_argument("--executions", type=int, default=400)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--targets", nargs="+", default=list(TARGETS),
                        choices=list(TARGETS))
    parser.add_argument("--corpus", help="corpus directory (default: committed)")
    parser.add_argument("--out", help="write the report/minimized case here")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.smoke:
            return _smoke(args)
        if args.campaign:
            return _campaign(args)
        if args.replay:
            return _replay_one(Path(args.replay), args)
        return _minimize(Path(args.minimize), args)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
