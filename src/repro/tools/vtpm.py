"""Multi-tenant vTPM sweep: ``python -m repro.tools.vtpm``.

Runs mutually-distrusting vTPM tenants (:mod:`repro.vtpm`) across a
:class:`~repro.core.fleet.FlickerFleet`: every tenant executes attested
Flicker sessions inside its own virtual TPM on shared hardware, and —
unless ``--no-migrate`` — half the machines hand one tenant to their
neighbour mid-run, exercising the migration protocol under load.  Every
attestation is verified; per-tenant rows carry the tenant's AIK identity
and virtual PCR 17 so migration fidelity is visible in the output.

Deterministic: the same seed and shape print the same bytes at any
``--workers`` count, migrations included — the nightly sweep ``cmp``'s
the JSON from two worker counts.

Options::

    --machines N      fleet machines (default 4)
    --tenants N       tenants provisioned per machine (default 2)
    --sessions N      attested sessions per tenant (default 2)
    --seed N          fleet seed (default 2008)
    --no-migrate      skip the mid-run migrations
    --shard-size N    split fleets larger than N machines into groups
                      run as separate cells, merged byte-identically
    --workers N       process-pool size for sharded runs (0 = auto)
    --json PATH       also write the full report dict as JSON
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, List, Optional, Sequence

from repro.core.pal import PAL, PALContext
from repro.crypto.sha1 import sha1
from repro.errors import PALRuntimeError

#: Report schema tag.
REPORT_SCHEMA = "repro-vtpm-sweep/1"

#: Latency scenarios cycled across tenants, in a pinned order.
SCENARIO_CYCLE = ("discrete", "infineon", "mobile")


class TenantWorkloadPAL(PAL):
    """Minimal tenant workload: measure the input, bind it into PCR 17."""

    name = "vtpm-tenant-work"
    modules = ("tpm_utils", "crypto")

    def run(self, ctx: PALContext) -> None:
        if not ctx.inputs:
            raise PALRuntimeError("tenant workload needs an input")
        digest = ctx.crypto.sha1(ctx.inputs)
        ctx.charge(1.0, "tenant-work")
        ctx.tpm.pcr_extend(digest)
        ctx.write_output(digest)


def _aik_id(public) -> str:
    """Short stable identity of an AIK public key (survives migration)."""
    return sha1(f"{public.n}:{public.e}".encode("ascii")).hex()[:16]


def _run_tenant_sessions(fleet, host, name: str, pal: TenantWorkloadPAL,
                         count: int, start: int) -> int:
    """Run ``count`` attested sessions for ``name`` on ``host``; every
    attestation is checked against the host's verifier.  Returns how
    many verified."""
    verified = 0
    for k in range(start, start + count):
        inputs = f"{name}:session:{k}".encode("ascii")
        nonce = sha1(f"vtpm-sweep:{name}:{k}".encode("ascii"))
        result = host.platform.execute_pal(pal, inputs=inputs, nonce=nonce,
                                           tenant=name)
        attestation = host.platform.attest(nonce, result, tenant=name)
        report = fleet.verifier_for(host.machine_id).verify(
            attestation, result.image, nonce, pal_extends=[sha1(inputs)])
        if report.ok:
            verified += 1
        host.platform.vtpm.tenant(name).increment_counter(
            _tenant_counter(host, name))
    return verified


_COUNTER_IDS: Dict[str, int] = {}


def _tenant_counter(host, name: str) -> int:
    """The tenant's session counter id — created on first use; the id is
    part of the vTPM snapshot, so it stays valid across migration."""
    if name not in _COUNTER_IDS:
        _COUNTER_IDS[name] = (
            host.platform.vtpm.tenant(name).create_counter(b"sessions"))
    return _COUNTER_IDS[name]


def run_vtpm_cell(config: dict) -> dict:
    """One fleet cell of the sweep — module-level so worker processes
    can unpickle it.  Returns the cell's report as a plain dict."""
    from repro.core.fleet import FlickerFleet

    machines = config.get("machines", 4)
    tenants_per_machine = config.get("tenants", 2)
    sessions = config.get("sessions", 2)
    seed = config.get("seed", 2008)
    migrate = config.get("migrate", True)
    index_base = config.get("index_base", 0)

    fleet = FlickerFleet(num_machines=machines, seed=seed,
                         index_base=index_base)
    pal = TenantWorkloadPAL()
    _COUNTER_IDS.clear()

    #: tenant name → its current host (migrations reassign).
    location: Dict[str, Any] = {}
    home: Dict[str, str] = {}
    scenario: Dict[str, str] = {}
    verified: Dict[str, int] = {}
    migrated: List[str] = []

    for i, host in enumerate(fleet.hosts):
        g = index_base + i
        for j in range(tenants_per_machine):
            name = f"tenant-{g:04d}-{j}"
            scenario[name] = SCENARIO_CYCLE[(g + j) % len(SCENARIO_CYCLE)]
            host.platform.vtpm.create_tenant(name, scenario=scenario[name])
            location[name] = host
            home[name] = host.machine_id
            verified[name] = 0

    first = (sessions + 1) // 2
    for name in sorted(location):
        verified[name] += _run_tenant_sessions(
            fleet, location[name], name, pal, first, start=0)

    if migrate and machines >= 2 and tenants_per_machine >= 1:
        # Mid-run migrations: every even machine hands its first tenant
        # to its (intra-cell) neighbour — sharding never splits a pair.
        for i in range(0, machines - 1, 2):
            g = index_base + i
            name = f"tenant-{g:04d}-0"
            source, destination = fleet.hosts[i], fleet.hosts[i + 1]
            fleet.migrate_tenant(source.machine_id, destination.machine_id,
                                 name)
            location[name] = destination
            migrated.append(name)

    for name in sorted(location):
        verified[name] += _run_tenant_sessions(
            fleet, location[name], name, pal, sessions - first, start=first)

    per_tenant = []
    for name in sorted(location):
        host = location[name]
        vt = host.platform.vtpm.tenant(name)
        per_tenant.append({
            "tenant": name,
            "scenario": scenario[name],
            "home": home[name],
            "machine": host.machine_id,
            "migrated": name in migrated,
            "sessions": sessions,
            "verified": verified[name],
            "aik": _aik_id(vt.aik_public),
            "pcr17": vt.pcrs.read(17).hex(),
            "counter": vt.read_counter(_tenant_counter(host, name)),
        })
    return {
        "schema": REPORT_SCHEMA,
        "seed": seed,
        "machines": machines,
        "tenants_per_machine": tenants_per_machine,
        "sessions_per_tenant": sessions,
        "tenants": len(per_tenant),
        "sessions": sessions * len(per_tenant),
        "verified": sum(verified.values()),
        "migrations": len(migrated),
        "per_tenant": per_tenant,
    }


def merge_vtpm_reports(groups: Sequence[dict]) -> dict:
    """Merge per-group cell reports from one sharded sweep: counts sum,
    ``per_tenant`` concatenates in group (= machine) order, so the
    merged dict is byte-identical at any worker count."""
    if len(groups) == 1:
        return groups[0]
    first = groups[0]
    return {
        "schema": first["schema"],
        "seed": first["seed"],
        "machines": sum(g["machines"] for g in groups),
        "tenants_per_machine": first["tenants_per_machine"],
        "sessions_per_tenant": first["sessions_per_tenant"],
        "tenants": sum(g["tenants"] for g in groups),
        "sessions": sum(g["sessions"] for g in groups),
        "verified": sum(g["verified"] for g in groups),
        "migrations": sum(g["migrations"] for g in groups),
        "per_tenant": [t for g in groups for t in g["per_tenant"]],
        "shards": len(groups),
    }


def run_vtpm_sweep(config: dict, workers: int = 1,
                   shard_size: Optional[int] = None) -> dict:
    """The sweep entry point: shard the fleet into contiguous machine
    groups (even-sized pairs stay together, so migrations never cross a
    shard boundary), run each group as its own cell, merge."""
    from repro.sim.parallel import map_seeded, shard_groups

    machines = config.get("machines", 4)
    if shard_size is None or machines <= shard_size:
        return run_vtpm_cell(dict(config))
    if shard_size % 2:
        # Keep migration pairs (machines 2k → 2k+1) intra-group.
        shard_size += 1
    cells = [
        {**config, "machines": count, "index_base": base}
        for base, count in shard_groups(machines, shard_size)
    ]
    return merge_vtpm_reports(map_seeded(run_vtpm_cell, cells,
                                         workers=workers))


def render(report: dict) -> str:
    """Human-readable summary of one sweep report."""
    lines = [
        "# vTPM multi-tenant sweep",
        f"(seed {report['seed']}; deterministic virtual-time results)",
        "",
        f"machines:           {report['machines']}",
        f"tenants:            {report['tenants']} "
        f"({report['tenants_per_machine']} per machine)",
        f"attested sessions:  {report['sessions']}",
        f"verified:           {report['verified']}",
        f"migrations:         {report['migrations']}",
    ]
    if "shards" in report:
        lines.append(f"shard groups:       {report['shards']}")
    lines.append("")
    lines.append("tenant            scenario  machine     migrated  "
                 "ok  aik")
    for row in report["per_tenant"]:
        lines.append(
            f"{row['tenant']:<17} {row['scenario']:<9} "
            f"{row['machine']:<11} {str(row['migrated']):<9} "
            f"{row['verified']}/{row['sessions']}  {row['aik']}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.vtpm",
        description="Multi-tenant vTPM attestation and migration sweep.",
    )
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--sessions", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--no-migrate", action="store_true")
    parser.add_argument("--shard-size", type=int, default=None)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--json", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    config = dict(
        machines=args.machines,
        tenants=args.tenants,
        sessions=args.sessions,
        seed=args.seed,
        migrate=not args.no_migrate,
    )
    report = run_vtpm_sweep(config, workers=args.workers,
                            shard_size=args.shard_size)
    print(render(report))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            fh.write(json.dumps(report, sort_keys=True,
                                separators=(", ", ": ")) + "\n")
        print(f"\nwrote JSON report to {args.json}")


if __name__ == "__main__":
    main()
