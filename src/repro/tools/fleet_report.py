"""Fleet throughput report: ``python -m repro.tools.fleet_report``.

Runs the §6.2 distributed-factoring project concurrently on a
:class:`~repro.core.fleet.FlickerFleet` and prints per-machine plus
aggregate throughput — sessions per virtual second, utilization, and
network traffic.  Deterministic: the same seed and fleet shape print the
same bytes on every run and every machine.

Options::

    --machines N          client machines in the fleet (default 4)
    --units-per-client N  work units dispatched to each client (default 2)
    --slice-ms MS         Flicker session slice length (default 2000)
    --range-per-unit N    divisors per work unit (default 400)
    --seed N              fleet seed (default 2008)
    --jitter-ms MS        seeded gaussian network jitter (default 0)
    --shard-size N        split fleets larger than N machines into groups
                          run as separate cells, merged byte-identically
    --workers N           process-pool size for sharded runs (0 = auto)
    --json PATH           also write the full report dict as JSON
    --chrome PATH         also write a per-machine-track Chrome trace
                          (implies observability; load in Perfetto)
"""

from __future__ import annotations

import argparse
from typing import Iterable, List, Optional, Sequence

from repro.apps.distributed import FleetProject, FleetProjectReport
from repro.core.fleet import FlickerFleet

#: The demonstration composite: 3*5*7*11*13 times a prime.
DEFAULT_N = 15015 * 1_000_003


def _table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [tuple(str(c) for c in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = [f"\n## {title}", sep]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append(sep)
    return "\n".join(lines)


def run_fleet(
    machines: int = 4,
    units_per_client: int = 2,
    slice_ms: float = 2000.0,
    range_per_unit: int = 400,
    seed: int = 2008,
    jitter_ms: float = 0.0,
    observability: bool = False,
    n: int = DEFAULT_N,
    index_base: int = 0,
    clients: Optional[int] = None,
):
    """Build the fleet, run the project; returns ``(fleet, report)``.

    ``index_base`` numbers this fleet's machines globally (a sharded
    sweep runs each machine group as its own fleet); ``clients`` limits
    participation to the first N machines of a lazily built fleet.
    """
    fleet = FlickerFleet(
        num_machines=machines,
        seed=seed,
        jitter_ms=jitter_ms,
        observability=observability,
        index_base=index_base,
    )
    project = FleetProject(
        fleet, n=n, units_per_client=units_per_client,
        slice_ms=slice_ms, range_per_unit=range_per_unit,
        clients=clients,
    )
    return fleet, project.run()


def _sweep_cell(config: dict) -> dict:
    """One fleet run for the sweep executor — module-level so worker
    processes can unpickle it.  Returns the report as a plain dict."""
    _, report = run_fleet(**config)
    return report.to_dict()


def merge_group_reports(groups: Sequence[dict]) -> dict:
    """Merge per-group report dicts from one sharded fleet run.

    Counters and times sum, the makespan is the slowest group's, and the
    two rates are recomputed from the merged totals — every input is in
    the group dicts, so the merge is exact, not an average of averages.
    The groups arrive in ``index_base`` order (``map_seeded`` preserves
    input order), which keeps the merged ``per_machine`` list — and the
    whole dict — byte-identical at any worker count.
    """
    if len(groups) == 1:
        return groups[0]
    merged = {
        "fleet_size": sum(g["fleet_size"] for g in groups),
        "units_issued": sum(g["units_issued"] for g in groups),
        "units_accepted": sum(g["units_accepted"] for g in groups),
        "units_rejected": sum(g["units_rejected"] for g in groups),
        "makespan_ms": max(g["makespan_ms"] for g in groups),
        "total_sessions": sum(g["total_sessions"] for g in groups),
        "total_busy_ms": round(sum(g["total_busy_ms"] for g in groups), 6),
        "useful_ms": round(sum(g["useful_ms"] for g in groups), 6),
        "network_bytes": sum(g["network_bytes"] for g in groups),
        "network_messages": sum(g["network_messages"] for g in groups),
        "per_machine": [m for g in groups for m in g["per_machine"]],
        "shards": len(groups),
    }
    busy = merged["total_busy_ms"]
    merged["efficiency"] = round(merged["useful_ms"] / busy if busy else 0.0, 6)
    makespan = merged["makespan_ms"]
    merged["sessions_per_virtual_second"] = round(
        merged["total_sessions"] / (makespan / 1000.0) if makespan > 0 else 0.0,
        6)
    return merged


def run_fleet_sweep(configs, workers: int = 1, shard_size: Optional[int] = None):
    """Run many independent fleet simulations, optionally in parallel.

    Each config is a keyword dict for :func:`run_fleet`.  A fleet run is
    a single discrete-event schedule and cannot itself be parallelized
    without breaking determinism, but the *sweep* over fleet shapes and
    seeds shards perfectly: with ``workers > 1`` the runs spread over a
    process pool and merge back in config order, so the list of report
    dicts is byte-identical to a serial sweep (``0`` = one worker per
    CPU).

    ``shard_size`` additionally shards *within* a config: a fleet larger
    than ``shard_size`` machines is partitioned into contiguous machine
    groups (:func:`repro.sim.parallel.shard_groups`), each group runs as
    its own fleet cell — globally numbered via ``index_base``, so group
    ``g`` simulates exactly the machines ``g*shard_size..`` of the flat
    fleet — and the group reports merge via :func:`merge_group_reports`.
    The partition depends only on ``shard_size``, so the merged output is
    byte-identical at any worker count.  This is how the 10,000-machine
    sweep runs: 10k machines never fit one schedule's working set, but
    ~40 groups of 256 pipeline through a worker pool.
    """
    from repro.sim.parallel import map_seeded, shard_groups

    configs = [dict(c) for c in configs]
    cells: List[dict] = []
    spans: List[int] = []  # cells per config, for the merge
    for config in configs:
        machines = config.get("machines", 4)
        if shard_size is None or machines <= shard_size:
            cells.append(config)
            spans.append(1)
            continue
        groups = shard_groups(machines, shard_size)
        clients = config.get("clients")
        for base, count in groups:
            cell = {**config, "machines": count, "index_base": base}
            if clients is not None:
                # Participation is global ("the first N machines"); each
                # group gets its overlap with [0, clients).
                cell["clients"] = max(0, min(clients, base + count) - base)
            cells.append(cell)
        spans.append(len(groups))
    results = map_seeded(_sweep_cell, cells, workers=workers)
    merged: List[dict] = []
    cursor = 0
    for span in spans:
        merged.append(merge_group_reports(results[cursor:cursor + span]))
        cursor += span
    return merged


def build_report_dict(report: dict, seed: int,
                      extra_rows: Sequence[Sequence] = ()) -> str:
    """The printable report from a plain report *dict* — the shape both
    :meth:`FleetProjectReport.to_dict` and :func:`merge_group_reports`
    produce, so flat and sharded runs render identically."""
    machine_rows = [
        (
            m["machine_id"],
            m["sessions"],
            f"{m['units_accepted']}/{m['units_accepted'] + m['units_rejected']}",
            f"{m['busy_ms']:.1f}",
            f"{m['utilization']:.4f}",
            m["net_messages"],
            m["net_bytes"],
        )
        for m in report["per_machine"]
    ]
    machine_rows.extend(extra_rows)
    aggregate_rows = [
        ("client machines", report["fleet_size"]),
        ("units accepted / issued",
         f"{report['units_accepted']} / {report['units_issued']}"),
        ("makespan (virtual ms)", f"{report['makespan_ms']:.1f}"),
        ("total sessions", report["total_sessions"]),
        ("sessions / virtual second",
         f"{report['sessions_per_virtual_second']:.3f}"),
        ("fleet efficiency (useful/busy)", f"{report['efficiency']:.3f}"),
        ("network messages", report["network_messages"]),
        ("network bytes", report["network_bytes"]),
    ]
    if "shards" in report:
        aggregate_rows.append(("shard groups", report["shards"]))
    return "\n".join([
        "# Flicker fleet — distributed factoring (§6.2, concurrent)",
        f"(seed {seed}; all times are deterministic virtual-time results)",
        _table(
            "Per-machine activity",
            ["Machine", "Sessions", "Units ok", "Busy (ms)",
             "Utilization", "Msgs", "Bytes"],
            machine_rows,
        ),
        _table("Aggregate throughput", ["Quantity", "Value"], aggregate_rows),
    ])


def build_report(fleet: FlickerFleet, report: FleetProjectReport) -> str:
    """The printable report for one finished flat (unsharded) fleet run —
    includes the server machine's row, which only exists when the whole
    fleet ran in this process."""
    server = fleet.machine_reports()[-1]
    server_row = (
        server.machine_id, "-", "-", f"{server.busy_ms:.1f}",
        f"{server.utilization:.4f}", server.net_messages, server.net_bytes,
    )
    return build_report_dict(report.to_dict(), fleet.seed,
                             extra_rows=[server_row])


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.fleet_report",
        description="Concurrent multi-machine Flicker fleet throughput report.",
    )
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--units-per-client", type=int, default=2)
    parser.add_argument("--slice-ms", type=float, default=2000.0)
    parser.add_argument("--range-per-unit", type=int, default=400)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--jitter-ms", type=float, default=0.0)
    parser.add_argument("--shard-size", type=int, default=None,
                        help="split fleets larger than N machines into "
                             "contiguous groups run as separate cells")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for sharded runs "
                             "(0 = one per CPU)")
    parser.add_argument("--json", metavar="PATH", default=None)
    parser.add_argument("--chrome", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    config = dict(
        machines=args.machines,
        units_per_client=args.units_per_client,
        slice_ms=args.slice_ms,
        range_per_unit=args.range_per_unit,
        seed=args.seed,
        jitter_ms=args.jitter_ms,
        observability=args.chrome is not None,
    )
    if args.shard_size is not None or args.workers != 1:
        if args.chrome:
            parser.error("--chrome requires a flat run "
                         "(drop --shard-size/--workers)")
        [report_dict] = run_fleet_sweep([config], workers=args.workers,
                                        shard_size=args.shard_size)
        fleet = None
        print(build_report_dict(report_dict, args.seed))
    else:
        fleet, report = run_fleet(**config)
        report_dict = report.to_dict()
        print(build_report(fleet, report))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            fh.write(json.dumps(report_dict, sort_keys=True,
                                separators=(", ", ": ")) + "\n")
        print(f"\nwrote JSON report to {args.json}")
    if args.chrome:
        from repro.obs import export_fleet_chrome_trace

        with open(args.chrome, "w") as fh:
            fh.write(export_fleet_chrome_trace(fleet.hubs(), fleet.traces()))
        print(f"wrote Chrome trace to {args.chrome} (load in Perfetto)")


if __name__ == "__main__":
    main()
