"""Fleet throughput report: ``python -m repro.tools.fleet_report``.

Runs the §6.2 distributed-factoring project concurrently on a
:class:`~repro.core.fleet.FlickerFleet` and prints per-machine plus
aggregate throughput — sessions per virtual second, utilization, and
network traffic.  Deterministic: the same seed and fleet shape print the
same bytes on every run and every machine.

Options::

    --machines N          client machines in the fleet (default 4)
    --units-per-client N  work units dispatched to each client (default 2)
    --slice-ms MS         Flicker session slice length (default 2000)
    --range-per-unit N    divisors per work unit (default 400)
    --seed N              fleet seed (default 2008)
    --jitter-ms MS        seeded gaussian network jitter (default 0)
    --json PATH           also write the full report dict as JSON
    --chrome PATH         also write a per-machine-track Chrome trace
                          (implies observability; load in Perfetto)
"""

from __future__ import annotations

import argparse
from typing import Iterable, List, Optional, Sequence

from repro.apps.distributed import FleetProject, FleetProjectReport
from repro.core.fleet import FlickerFleet

#: The demonstration composite: 3*5*7*11*13 times a prime.
DEFAULT_N = 15015 * 1_000_003


def _table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [tuple(str(c) for c in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = [f"\n## {title}", sep]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append(sep)
    return "\n".join(lines)


def run_fleet(
    machines: int = 4,
    units_per_client: int = 2,
    slice_ms: float = 2000.0,
    range_per_unit: int = 400,
    seed: int = 2008,
    jitter_ms: float = 0.0,
    observability: bool = False,
    n: int = DEFAULT_N,
):
    """Build the fleet, run the project; returns ``(fleet, report)``."""
    fleet = FlickerFleet(
        num_machines=machines,
        seed=seed,
        jitter_ms=jitter_ms,
        observability=observability,
    )
    project = FleetProject(
        fleet, n=n, units_per_client=units_per_client,
        slice_ms=slice_ms, range_per_unit=range_per_unit,
    )
    return fleet, project.run()


def _sweep_cell(config: dict) -> dict:
    """One fleet run for the sweep executor — module-level so worker
    processes can unpickle it.  Returns the report as a plain dict."""
    _, report = run_fleet(**config)
    return report.to_dict()


def run_fleet_sweep(configs, workers: int = 1):
    """Run many independent fleet simulations, optionally in parallel.

    Each config is a keyword dict for :func:`run_fleet`.  A fleet run is
    a single discrete-event schedule and cannot itself be parallelized
    without breaking determinism, but the *sweep* over fleet shapes and
    seeds shards perfectly: with ``workers > 1`` the runs spread over a
    process pool and merge back in config order, so the list of report
    dicts is byte-identical to a serial sweep (``0`` = one worker per
    CPU).
    """
    from repro.sim.parallel import map_seeded

    return map_seeded(_sweep_cell, [dict(c) for c in configs], workers=workers)


def build_report(fleet: FlickerFleet, report: FleetProjectReport) -> str:
    """The printable report for one finished fleet run."""
    machine_rows = [
        (
            m.machine_id,
            m.sessions,
            f"{m.units_accepted}/{m.units_accepted + m.units_rejected}",
            f"{m.busy_ms:.1f}",
            f"{m.utilization:.4f}",
            m.net_messages,
            m.net_bytes,
        )
        for m in report.per_machine
    ]
    server = fleet.machine_reports()[-1]
    machine_rows.append(
        (server.machine_id, "-", "-", f"{server.busy_ms:.1f}",
         f"{server.utilization:.4f}", server.net_messages, server.net_bytes)
    )
    aggregate_rows = [
        ("client machines", report.fleet_size),
        ("units accepted / issued",
         f"{report.units_accepted} / {report.units_issued}"),
        ("makespan (virtual ms)", f"{report.makespan_ms:.1f}"),
        ("total sessions", report.total_sessions),
        ("sessions / virtual second",
         f"{report.sessions_per_virtual_second:.3f}"),
        ("fleet efficiency (useful/busy)", f"{report.efficiency:.3f}"),
        ("network messages", report.network_messages),
        ("network bytes", report.network_bytes),
    ]
    return "\n".join([
        "# Flicker fleet — distributed factoring (§6.2, concurrent)",
        f"(seed {fleet.seed}; all times are deterministic virtual-time results)",
        _table(
            "Per-machine activity",
            ["Machine", "Sessions", "Units ok", "Busy (ms)",
             "Utilization", "Msgs", "Bytes"],
            machine_rows,
        ),
        _table("Aggregate throughput", ["Quantity", "Value"], aggregate_rows),
    ])


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.fleet_report",
        description="Concurrent multi-machine Flicker fleet throughput report.",
    )
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--units-per-client", type=int, default=2)
    parser.add_argument("--slice-ms", type=float, default=2000.0)
    parser.add_argument("--range-per-unit", type=int, default=400)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--jitter-ms", type=float, default=0.0)
    parser.add_argument("--json", metavar="PATH", default=None)
    parser.add_argument("--chrome", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    fleet, report = run_fleet(
        machines=args.machines,
        units_per_client=args.units_per_client,
        slice_ms=args.slice_ms,
        range_per_unit=args.range_per_unit,
        seed=args.seed,
        jitter_ms=args.jitter_ms,
        observability=args.chrome is not None,
    )
    print(build_report(fleet, report))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            fh.write(json.dumps(report.to_dict(), sort_keys=True,
                                separators=(", ", ": ")) + "\n")
        print(f"\nwrote JSON report to {args.json}")
    if args.chrome:
        from repro.obs import export_fleet_chrome_trace

        with open(args.chrome, "w") as fh:
            fh.write(export_fleet_chrome_trace(fleet.hubs(), fleet.traces()))
        print(f"wrote Chrome trace to {args.chrome} (load in Perfetto)")


if __name__ == "__main__":
    main()
