"""Session-trace explorer: ``python -m repro.tools.timeline``.

Runs one Flicker session of a demonstration PAL and dumps the complete
platform event trace — every TPM command, the SKINIT, the OS suspend and
resume — so a reader can follow the Figure 2 timeline event by event.
"""

from __future__ import annotations

from repro.core import FlickerPlatform, PAL


class TimelineDemoPAL(PAL):
    """Exercises the TPM so the trace has something to show."""

    name = "timeline-demo"
    modules = ("tpm_utils",)

    def run(self, ctx):
        entropy = ctx.tpm.get_random(16)
        blob = ctx.tpm.seal_to_pal(entropy, ctx.self_pcr17)
        ctx.write_output(blob.encode())


def main() -> None:
    platform = FlickerPlatform()
    nonce = b"\x3c" * 20
    result = platform.execute_pal(TimelineDemoPAL(), inputs=b"demo", nonce=nonce)

    print("# Flicker session trace (virtual time)")
    print(platform.machine.trace.format_timeline())

    print("\n# Figure 2 phase totals")
    for phase, ms in sorted(result.phase_ms.items(), key=lambda kv: -kv[1]):
        print(f"  {phase:<16} {ms:9.3f} ms")
    print(f"  {'TOTAL':<16} {result.total_ms:9.3f} ms")

    print("\n# PCR-17 event log")
    for label, measurement in result.event_log:
        print(f"  {label:<12} {measurement.hex()}")


if __name__ == "__main__":
    main()
