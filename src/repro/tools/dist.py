"""Work-distribution report: ``python -m repro.tools.dist``.

Runs the BOINC-grade distribution service
(:class:`~repro.dist.service.WorkDistributionService`) on a
:class:`~repro.core.fleet.FlickerFleet` and prints the quorum,
reputation, and throughput outcome.  Deterministic: the same seed and
shape print the same bytes on every run and every machine.

Options::

    --machines N          client machines in the fleet (default 8)
    --units N             total work units in the job (default 32)
    --quorum K            vote target for untrusted clients (default 3)
    --trusted-quorum K    vote target for trusted clients (default 1)
    --behaviors SPEC      comma list of INDEX:KIND[:DELAY_MS] client
                          behaviors (kinds: honest lazy forge dropout
                          flaky); unlisted machines are honest
    --faults SPEC         comma list of INDEX:KIND[:MAGNITUDE] fault
                          specs installed per machine (e.g.
                          "2:slb-bit-flip:64,5:tpm-transient")
    --timeout-ms MS       per-assignment response deadline (default 60000)
    --seed N              fleet + job seed (default 2008)
    --report              print the human-readable report (default when
                          no other output is selected)
    --json PATH           write the report dict as canonical JSON
    --dump-db PATH        write the byte-canonical job-database dump
    --replay PATH         rebuild the report from a dump instead of
                          running the simulation (proves the report is a
                          pure function of the database)
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.dist import (
    JobDatabase,
    JobSpec,
    QuorumPolicy,
    ReputationPolicy,
    WorkDistributionService,
    build_report,
    parse_behaviors,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.tools.fleet_report import DEFAULT_N, _table


def parse_faults(spec: str, seed: int = 0) -> FaultPlan:
    """Parse a CLI fault spec into a per-machine :class:`FaultPlan`.

    Entries are ``INDEX:KIND`` or ``INDEX:KIND:MAGNITUDE``; each becomes
    a :class:`FaultSpec` addressed to ``client-INDEX``::

        >>> plan = parse_faults("2:slb-bit-flip:64,5:tpm-transient")
        >>> (plan.specs[0].machine, plan.specs[0].magnitude)
        ('client-02', 64)
        >>> parse_faults("").specs
        ()
    """
    specs = []
    if spec:
        for entry in spec.split(","):
            parts = entry.strip().split(":")
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"bad fault entry {entry!r}; want INDEX:KIND[:MAGNITUDE]"
                )
            index = int(parts[0])
            magnitude = int(parts[2]) if len(parts) == 3 else 0
            specs.append(FaultSpec(
                kind=parts[1], magnitude=magnitude,
                machine=f"client-{index:02d}",
            ))
    return FaultPlan(seed=seed, specs=tuple(specs))


def run_dist(
    machines: int = 8,
    units: int = 32,
    quorum: int = 3,
    trusted_quorum: int = 1,
    behaviors: str = "",
    faults: str = "",
    timeout_ms: float = 60_000.0,
    slice_ms: float = 2000.0,
    range_per_unit: int = 400,
    batch_size: int = 16,
    promote_after: int = 3,
    spot_check_every: int = 4,
    seed: int = 2008,
    observability: bool = False,
    n: int = DEFAULT_N,
    index_base: int = 0,
):
    """Build fleet + service, install faults, run; returns
    ``(service, report)``.  ``index_base`` numbers the machines globally
    (a sharded sweep runs each machine group as its own service)."""
    from repro.core.fleet import FlickerFleet

    fleet = FlickerFleet(num_machines=machines, seed=seed,
                         observability=observability,
                         index_base=index_base)
    plan = parse_faults(faults, seed=seed)
    for host in fleet.hosts:
        sub = plan.for_machine(host.machine_id)
        if sub.specs:
            FaultInjector(sub).install(host.platform)
    service = WorkDistributionService(
        fleet,
        JobSpec(n=n, total_units=units, range_per_unit=range_per_unit,
                batch_size=batch_size, slice_ms=slice_ms,
                timeout_ms=timeout_ms),
        quorum=QuorumPolicy(base_quorum=quorum,
                            trusted_quorum=trusted_quorum),
        reputation=ReputationPolicy(promote_after=promote_after,
                                    spot_check_every=spot_check_every),
        behaviors=parse_behaviors(behaviors),
    )
    return service, service.run()


def _sweep_cell(config: dict) -> dict:
    """One service run for the sweep executor — module-level so worker
    processes can unpickle it.  Returns the report dict plus the job
    database's dump digest (the replay-identity witness)."""
    from repro.crypto.sha1 import sha1

    service, report = run_dist(**config)
    cell = report.to_dict()
    cell["db_sha1"] = sha1(service.db.dump_json().encode()).hex()
    return cell


def merge_group_cells(groups: List[dict]) -> dict:
    """Merge per-group report cells from one sharded distribution run.

    Counters sum, the makespan is the slowest group's, and the three
    rates are recomputed from merged totals.  ``db_sha1`` becomes the
    digest of the concatenated group digests (in ``index_base`` order) —
    still a replay-identity witness, now for the whole group set.
    """
    from repro.crypto.sha1 import sha1

    if len(groups) == 1:
        return groups[0]
    merged = {"schema": groups[0].get("schema"), "shards": len(groups)}
    for key in ("fleet_size", "total_units", "units_validated",
                "units_abandoned", "units_unresolved", "units_flagged",
                "assignments", "resends", "timeouts", "late", "failures",
                "rejected_attestation", "rejected_state", "total_sessions",
                "verify_count"):
        merged[key] = sum(g[key] for g in groups)
    merged["verify_busy_ms"] = round(sum(g["verify_busy_ms"]
                                         for g in groups), 6)
    merged["makespan_ms"] = max(g["makespan_ms"] for g in groups)
    merged["max_verify_queue_depth"] = max(g["max_verify_queue_depth"]
                                           for g in groups)
    merged["resend_rate"] = round(
        merged["resends"] / merged["assignments"]
        if merged["assignments"] else 0.0, 6)
    merged["sessions_per_virtual_second"] = round(
        merged["total_sessions"] / (merged["makespan_ms"] / 1000.0)
        if merged["makespan_ms"] > 0 else 0.0, 6)
    merged["verify_throughput_per_vsec"] = round(
        merged["verify_count"] / (merged["verify_busy_ms"] / 1000.0)
        if merged["verify_busy_ms"] > 0 else 0.0, 6)
    merged["found"] = sorted(set(f for g in groups for f in g["found"]))
    merged["per_client"] = [c for g in groups for c in g["per_client"]]
    merged["group_db_sha1"] = [g["db_sha1"] for g in groups]
    merged["db_sha1"] = sha1(
        "".join(g["db_sha1"] for g in groups).encode()).hex()
    return merged


def run_dist_sweep(configs, workers: int = 1,
                   shard_size: Optional[int] = None):
    """Run many independent service simulations, optionally in parallel.

    Each config is a keyword dict for :func:`run_dist`.  One run is a
    single discrete-event schedule, but the sweep shards perfectly:
    ``workers > 1`` spreads the runs over a process pool and merges in
    config order, byte-identical to a serial sweep.

    ``shard_size`` additionally shards *within* a config: a fleet larger
    than ``shard_size`` machines splits into contiguous machine groups
    (:func:`repro.sim.parallel.shard_groups`), each with its own service
    instance and a proportional share of the work units (an exact
    partition — group shares always sum to the config's ``units``).
    Groups whose share rounds to zero units are skipped; their machines
    stay idle and are reported in the merged cell's ``machines_idle``.
    The partition depends only on ``shard_size``, never the worker
    count, so merged output is byte-identical at any worker count.
    """
    from repro.sim.parallel import map_seeded, shard_groups

    configs = [dict(c) for c in configs]
    cells: List[dict] = []
    spans: List[int] = []
    idle: List[int] = []
    for config in configs:
        machines = config.get("machines", 8)
        if shard_size is None or machines <= shard_size:
            cells.append(config)
            spans.append(1)
            idle.append(0)
            continue
        units = config.get("units", 32)
        span = 0
        skipped = 0
        for base, count in shard_groups(machines, shard_size):
            # Exact proportional split: cumulative-quota differencing.
            share = (units * (base + count) // machines
                     - units * base // machines)
            if share == 0:
                skipped += count
                continue
            cells.append({**config, "machines": count, "units": share,
                          "index_base": base})
            span += 1
        spans.append(span)
        idle.append(skipped)
    results = map_seeded(_sweep_cell, cells, workers=workers)
    merged: List[dict] = []
    cursor = 0
    for span, skipped in zip(spans, idle):
        cell = merge_group_cells(results[cursor:cursor + span])
        if skipped:
            cell["machines_idle"] = skipped
        merged.append(cell)
        cursor += span
    return merged


def format_report(report) -> str:
    """The printable report for one finished (or replayed) run."""
    client_rows = [
        (
            c["client"],
            c["issued"],
            c["returned"],
            c["valid"],
            c["outvoted"],
            c["rejected"],
            c["timeouts"],
            c["late"],
            c["spot_checks"],
            "yes" if c["trusted"] else "no",
        )
        for c in report.per_client
    ]
    aggregate_rows = [
        ("client machines", report.fleet_size),
        ("units validated / total",
         f"{report.units_validated} / {report.total_units}"),
        ("units abandoned", report.units_abandoned),
        ("units flagged (ever)", report.units_flagged),
        ("assignments (resends)",
         f"{report.assignments} ({report.resends})"),
        ("resend rate", f"{report.resend_rate:.4f}"),
        ("rejected: attestation / state",
         f"{report.rejected_attestation} / {report.rejected_state}"),
        ("timeouts / late / failures",
         f"{report.timeouts} / {report.late} / {report.failures}"),
        ("makespan (virtual ms)", f"{report.makespan_ms:.1f}"),
        ("sessions / virtual second",
         f"{report.sessions_per_virtual_second:.3f}"),
        ("verify throughput (/vsec)",
         f"{report.verify_throughput_per_vsec:.1f}"),
        ("max verify queue depth", report.max_verify_queue_depth),
        ("factors found", " ".join(str(f) for f in report.found)),
    ]
    return "\n".join([
        "# Flicker work distribution — quorum over attested results",
        "(all times are deterministic virtual-time results)",
        _table(
            "Per-client outcomes",
            ["Client", "Issued", "Ret", "Valid", "Outvoted", "Rej",
             "T/O", "Late", "Spot", "Trusted"],
            client_rows,
        ),
        _table("Aggregate", ["Quantity", "Value"], aggregate_rows),
    ])


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.dist",
        description="BOINC-grade work distribution with quorum validation "
                    "of attested results.",
    )
    parser.add_argument("--machines", type=int, default=8)
    parser.add_argument("--units", type=int, default=32)
    parser.add_argument("--quorum", type=int, default=3)
    parser.add_argument("--trusted-quorum", type=int, default=1)
    parser.add_argument("--behaviors", default="")
    parser.add_argument("--faults", default="")
    parser.add_argument("--timeout-ms", type=float, default=60_000.0)
    parser.add_argument("--slice-ms", type=float, default=2000.0)
    parser.add_argument("--range-per-unit", type=int, default=400)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2008)
    parser.add_argument("--shard-size", type=int, default=None,
                        help="split fleets larger than this into machine "
                             "groups, each its own service instance")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for sharded groups "
                             "(0 = one per CPU)")
    parser.add_argument("--report", action="store_true")
    parser.add_argument("--json", metavar="PATH", default=None)
    parser.add_argument("--dump-db", metavar="PATH", default=None)
    parser.add_argument("--replay", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    if args.shard_size is not None and not args.replay:
        import json

        config = dict(
            machines=args.machines, units=args.units, quorum=args.quorum,
            trusted_quorum=args.trusted_quorum, behaviors=args.behaviors,
            faults=args.faults, timeout_ms=args.timeout_ms,
            slice_ms=args.slice_ms, range_per_unit=args.range_per_unit,
            batch_size=args.batch_size, seed=args.seed,
        )
        [cell] = run_dist_sweep([config], workers=args.workers,
                                shard_size=args.shard_size)
        payload = json.dumps(cell, sort_keys=True,
                             separators=(",", ": ")) + "\n"
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(payload)
            print(f"wrote JSON report to {args.json}")
        else:
            print(payload, end="")
        return

    if args.replay:
        with open(args.replay) as fh:
            db = JobDatabase.from_json(fh.read())
        report = build_report(db)
        service = None
        print(f"(replayed from {args.replay}; no simulation ran)")
    else:
        service, report = run_dist(
            machines=args.machines,
            units=args.units,
            quorum=args.quorum,
            trusted_quorum=args.trusted_quorum,
            behaviors=args.behaviors,
            faults=args.faults,
            timeout_ms=args.timeout_ms,
            slice_ms=args.slice_ms,
            range_per_unit=args.range_per_unit,
            batch_size=args.batch_size,
            seed=args.seed,
        )

    if args.report or not (args.json or args.dump_db):
        print(format_report(report))
    if args.json:
        import json

        with open(args.json, "w") as fh:
            fh.write(json.dumps(report.to_dict(), sort_keys=True,
                                separators=(",", ": ")) + "\n")
        print(f"wrote JSON report to {args.json}")
    if args.dump_db:
        if service is None:
            raise SystemExit("--dump-db needs a live run, not --replay")
        with open(args.dump_db, "w") as fh:
            fh.write(service.db.dump_json())
        print(f"wrote job-database dump to {args.dump_db}")


if __name__ == "__main__":
    main()
