"""Static-analysis driver: ``python -m repro.tools.lint``.

Runs the :mod:`repro.analysis` rule families — the TCB audit, the
determinism lints, the secret-hygiene checkers (intra- and
interprocedural), the tenant-isolation audit and the scheduler-sharing
lint — over the source tree and gates on zero non-baselined findings.

Usage::

    python -m repro.tools.lint                  # lint, exit 1 on findings
    python -m repro.tools.lint --json           # machine-readable findings
    python -m repro.tools.lint --profile        # slowest rules first
    python -m repro.tools.lint --explain TCB001 # why a rule exists
    python -m repro.tools.lint --update-baseline
    python -m repro.tools.lint --update-tcb-report
    python -m repro.tools.lint --update-callgraph-report

Paths and file locations come from the ``[repro:lint]`` section of
``setup.cfg`` (flags override).  Exit codes: 0 clean, 1 findings, 2
usage error.
"""

from __future__ import annotations

import argparse
import configparser
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import (
    all_rules,
    get_rule,
    load_baseline,
    load_project,
    render_baseline,
    run_rules_timed,
    split_baselined,
)
from repro.analysis.callgraph import (
    CALLGRAPH_REPORT_NAME,
    generate_callgraph_report,
)
from repro.analysis.tcb import TCB_REPORT_NAME, generate_tcb_report

FINDINGS_FORMAT = "repro-analysis-findings"
FINDINGS_VERSION = 1

DEFAULT_PATHS = ["src/repro"]
DEFAULT_BASELINE = "ANALYSIS_baseline.json"


def find_repo_root(start: Optional[Path] = None) -> Path:
    """The nearest ancestor holding ``setup.cfg`` (else the start dir)."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "setup.cfg").is_file():
            return candidate
    return current


def read_config(root: Path) -> dict:
    """The ``[repro:lint]`` section of ``setup.cfg``, with defaults."""
    config = {"paths": DEFAULT_PATHS, "baseline": DEFAULT_BASELINE,
              "tcb_report": TCB_REPORT_NAME,
              "callgraph_report": CALLGRAPH_REPORT_NAME}
    parser = configparser.ConfigParser()
    setup_cfg = root / "setup.cfg"
    if setup_cfg.is_file():
        parser.read(setup_cfg, encoding="utf-8")
    if parser.has_section("repro:lint"):
        section = parser["repro:lint"]
        if "paths" in section:
            config["paths"] = section["paths"].split()
        for key in ("baseline", "tcb_report", "callgraph_report"):
            if key in section:
                config[key] = section[key]
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="TCB audit, determinism lints and secret-hygiene checks",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: from setup.cfg)")
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: nearest setup.cfg)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as canonical JSON")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file of grandfathered findings")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to cover current findings")
    parser.add_argument("--update-tcb-report", action="store_true",
                        help=f"regenerate {TCB_REPORT_NAME} from the source tree")
    parser.add_argument("--update-callgraph-report", action="store_true",
                        help=f"regenerate {CALLGRAPH_REPORT_NAME} from the "
                             "source tree")
    parser.add_argument("--profile", action="store_true",
                        help="print per-rule wall time, slowest first")
    parser.add_argument("--explain", metavar="RULE-ID", default=None,
                        help="print a rule's rationale and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.explain:
        rule = get_rule(args.explain)
        if rule is None:
            known = ", ".join(r.id for r in all_rules())
            print(f"unknown rule {args.explain!r} (known: {known})",
                  file=sys.stderr)
            return 2
        print(rule.explain())
        return 0

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity}]  {rule.title}")
        return 0

    root = find_repo_root(args.root)
    config = read_config(root)
    paths = args.paths or config["paths"]
    baseline_path = args.baseline or (root / config["baseline"])

    project = load_project(root, paths)

    if args.update_tcb_report or args.update_callgraph_report:
        if args.update_tcb_report:
            report_path = root / config["tcb_report"]
            report_path.write_text(generate_tcb_report(project),
                                   encoding="utf-8")
            print(f"wrote {report_path.relative_to(root)}")
        if args.update_callgraph_report:
            report_path = root / config["callgraph_report"]
            report_path.write_text(generate_callgraph_report(project),
                                   encoding="utf-8")
            print(f"wrote {report_path.relative_to(root)}")
        return 0

    findings, rule_stats = run_rules_timed(project, all_rules())

    if args.update_baseline:
        Path(baseline_path).write_text(render_baseline(findings),
                                       encoding="utf-8")
        print(f"wrote {Path(baseline_path).name} ({len(findings)} findings)")
        return 0

    baseline = load_baseline(baseline_path)
    new, grandfathered = split_baselined(findings, baseline)

    if args.as_json:
        doc = {
            "format": FINDINGS_FORMAT,
            "version": FINDINGS_VERSION,
            "findings": [f.to_json() for f in new],
            "baselined": len(grandfathered),
            "meta": {
                "rule_timings": {
                    rule_id: {
                        "wall_ms": round(stat["wall_ms"], 3),
                        "findings": int(stat["findings"]),
                    }
                    for rule_id, stat in rule_stats.items()
                },
            },
        }
        print(json.dumps(doc, sort_keys=True, indent=2))
    else:
        for finding in new:
            print(f"{finding.path}:{finding.line}: {finding.rule} "
                  f"[{finding.severity}] {finding.message}")
        if args.profile:
            slowest = sorted(rule_stats.items(),
                             key=lambda kv: -kv[1]["wall_ms"])
            total_ms = sum(stat["wall_ms"] for _, stat in slowest)
            print(f"rule timings (total {total_ms:.0f} ms):")
            for rule_id, stat in slowest:
                print(f"  {rule_id:<8} {stat['wall_ms']:8.1f} ms  "
                      f"{int(stat['findings'])} finding(s)")
        summary = (f"{len(new)} finding(s), {len(grandfathered)} baselined, "
                   f"{len(project.files)} file(s) checked")
        print(summary if not new else f"FAILED: {summary}",
              file=sys.stderr if new else sys.stdout)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
