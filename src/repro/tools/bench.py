"""Unified benchmark runner: ``python -m repro.tools.bench``.

Discovers every benchmark registered by ``benchmarks/bench_*.py`` (see
:mod:`repro.bench`), runs each with pinned parameters, and writes one
schema-versioned ``BENCH_<name>.json`` per benchmark.  With ``--compare``
it gates the fresh results against committed baselines and exits
non-zero on regression — the CI perf job runs exactly that.

Usage::

    python -m repro.tools.bench                      # full params, write results
    python -m repro.tools.bench --quick              # baseline-sized params
    python -m repro.tools.bench --list               # show registered benchmarks
    python -m repro.tools.bench --only fleet,fig6_modules
    python -m repro.tools.bench --quick --out-dir bench-results \\
        --compare . --fail-over 20                   # the CI perf gate

Gate semantics (see ``repro.bench.compare``): ``virtual`` metrics must
match the baseline **exactly** — they are deterministic simulation
results, so any drift is a behavior change; ``wall`` metrics may be up
to ``--fail-over`` percent slower than baseline.  Baselines are
refreshed by running with ``--quick`` at the repository root and
committing the rewritten ``BENCH_*.json`` files.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.bench import (
    CompareFinding,
    all_benchmarks,
    compare_results,
    build_result,
    discover,
    get_benchmark,
    result_filename,
    result_json,
    validate_result,
)


def repo_root() -> Path:
    """The checkout root: the directory holding the ``benchmarks`` package.

    Falls back to the current directory when the package is not importable
    (results are then written relative to where the runner was invoked).
    """
    try:
        import benchmarks

        return Path(benchmarks.__file__).resolve().parent.parent
    except ImportError:
        return Path.cwd()


def _load_baseline(baseline: Path, name: str) -> Optional[dict]:
    """Read ``BENCH_<name>.json`` under ``baseline`` (a directory, or a
    single file when comparing exactly one benchmark)."""
    import json

    path = baseline / result_filename(name) if baseline.is_dir() else baseline
    if not path.exists():
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: Optional[Sequence[str]] = None, *,
         run_discovery: bool = True) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.bench",
        description="Run the registered benchmarks; write BENCH_<name>.json "
                    "results and optionally gate them against baselines.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="use the quick parameter sets (the mode the "
                             "committed baselines are generated with)")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list registered benchmarks and exit")
    parser.add_argument("--only", metavar="NAMES",
                        help="comma-separated subset of benchmarks to run")
    parser.add_argument("--out-dir", metavar="DIR", default=None,
                        help="directory for BENCH_<name>.json results "
                             "(default: the repository root)")
    parser.add_argument("--no-write", action="store_true",
                        help="run and compare without writing result files")
    parser.add_argument("--compare", metavar="BASELINE", default=None,
                        help="baseline directory (or single file) to gate "
                             "fresh results against")
    parser.add_argument("--fail-over", type=float, default=20.0, metavar="PCT",
                        help="maximum wall-time regression percentage before "
                             "the gate fails (default 20; virtual metrics "
                             "always require an exact match)")
    args = parser.parse_args(argv)

    if run_discovery:
        discover()

    if args.only:
        names = [n for n in args.only.split(",") if n]
        benches = [get_benchmark(n) for n in names]
    else:
        benches = all_benchmarks()

    if args.list_only:
        mode = "quick" if args.quick else "full"
        for bench in benches:
            print(f"{bench.name:24s} {bench.description}")
            print(f"{'':24s}   {mode} params: {bench.parameters(args.quick)}")
        return 0

    if not benches:
        print("no benchmarks registered (is the benchmarks package "
              "importable from here?)", file=sys.stderr)
        return 2

    out_dir = Path(args.out_dir) if args.out_dir else repo_root()
    baseline = Path(args.compare) if args.compare else None
    root = repo_root()

    failures: List[CompareFinding] = []
    for bench in benches:
        started = time.perf_counter()
        metrics = bench.run(quick=args.quick)
        wall_s = time.perf_counter() - started
        result = build_result(
            name=bench.name,
            params=bench.parameters(args.quick),
            metrics=metrics,
            quick=args.quick,
            wall_seconds=wall_s,
            repo_root=root,
        )
        validate_result(result)
        print(f"ran {bench.name:24s} in {wall_s:7.2f}s wall")

        if not args.no_write:
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / result_filename(bench.name)
            path.write_text(result_json(result), encoding="utf-8")
            print(f"    wrote {path}")

        if baseline is not None:
            base = _load_baseline(baseline, bench.name)
            if base is None:
                finding = CompareFinding(
                    "missing-baseline", "",
                    f"no {result_filename(bench.name)} under {baseline} — "
                    f"commit a baseline (see docs/BENCHMARKS.md)")
                failures.append(finding)
                print(f"    {finding}")
                continue
            findings = compare_results(result, base, args.fail_over)
            for finding in findings:
                print(f"    {finding}")
            if findings:
                failures.extend(findings)
            else:
                print(f"    baseline OK (virtual exact, wall within "
                      f"{args.fail_over:.0f}%)")

    if failures:
        print(f"\nPERF GATE FAILED: {len(failures)} finding(s) across "
              f"{len(benches)} benchmark(s)", file=sys.stderr)
        return 1
    if baseline is not None:
        print(f"\nperf gate passed: {len(benches)} benchmark(s) vs "
              f"{baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
