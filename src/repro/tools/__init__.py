"""Command-line tools for the Flicker reproduction.

* ``python -m repro.tools.report`` — regenerate the headline experiment
  numbers (a condensed version of the benchmark harness) as one report.
* ``python -m repro.tools.timeline`` — run a hello-world session and dump
  the full platform trace, for exploring how a session unfolds.
"""
