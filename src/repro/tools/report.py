"""One-shot experiment report: ``python -m repro.tools.report``.

Regenerates the paper's headline numbers (a condensed form of the full
benchmark harness in ``benchmarks/``) and prints paper-vs-measured rows.
Deterministic: the same numbers appear on every run and every machine.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.apps.ca import CertificateAuthority, CertificateSigningRequest
from repro.apps.distributed import BOINCClient, FactoringWorkUnit, flicker_efficiency
from repro.apps.rootkit_detector import RemoteAdministrator
from repro.apps.ssh_auth import PasswdEntry, SSHClient, SSHServer
from repro.core import FlickerPlatform
from repro.crypto.rsa import generate_rsa_keypair
from repro.sim.rng import DeterministicRNG
from repro.sim.timing import BROADCOM_BCM0102


def _table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [tuple(str(c) for c in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = [f"\n## {title}", sep]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append(sep)
    return "\n".join(lines)


def rootkit_section() -> str:
    platform = FlickerPlatform(seed=1022)
    admin = RemoteAdministrator(platform)
    report = admin.run_detection_query()
    return _table(
        "Rootkit detector (Table 1 / §7.2)",
        ["Quantity", "Paper", "Measured"],
        [
            ("end-to-end query (ms)", "1022.7", f"{report.query_latency_ms:.1f}"),
            ("kernel clean", "yes", "yes" if report.kernel_clean else "NO"),
        ],
    )


def skinit_section() -> str:
    rows = []
    for kb, paper in ((4, 11.9), (16, 45.0), (32, 89.2), (64, 177.5)):
        rows.append((f"{kb} KB", f"{paper:.1f}",
                     f"{BROADCOM_BCM0102.skinit_ms(min(kb * 1024, 0xFFFC)):.1f}"))
    return _table("SKINIT vs SLB size (Table 2)",
                  ["SLB size", "Paper (ms)", "Model (ms)"], rows)


def ssh_section() -> str:
    platform = FlickerPlatform(seed=1023)
    server = SSHServer(platform)
    server.add_user(PasswdEntry.create("alice", b"p4ssw0rd", b"fLiCkEr1"))
    outcome = SSHClient(platform).connect_and_login(server, "alice", b"p4ssw0rd")
    return _table(
        "SSH password authentication (Figure 9 / §7.4.1)",
        ["Quantity", "Paper", "Measured"],
        [
            ("authenticated", "yes", "yes" if outcome.authenticated else "NO"),
            ("connect → prompt (ms)", "1221", f"{outcome.time_to_prompt_ms:.0f}"),
            ("entry → session (ms)", "~940", f"{outcome.time_after_entry_ms:.0f}"),
        ],
    )


def ca_section() -> str:
    platform = FlickerPlatform(seed=1024)
    ca = CertificateAuthority(platform)
    ca.initialize()
    keys = generate_rsa_keypair(512, DeterministicRNG(55))
    before = platform.machine.clock.now()
    cert = ca.sign(CertificateSigningRequest("www.example.com", keys.public))
    elapsed = platform.machine.clock.now() - before
    return _table(
        "Certificate authority (§7.4.2)",
        ["Quantity", "Paper", "Measured"],
        [
            ("sign one CSR (ms)", "906.2", f"{elapsed:.1f}"),
            ("certificate verifies", "yes", "yes" if cert.verify(ca.public_key) else "NO"),
        ],
    )


def distributed_section() -> str:
    platform = FlickerPlatform(seed=1025)
    client = BOINCClient(platform)
    unit = FactoringWorkUnit(unit_id=1, n=15015, start=2, end=4)
    progress = client.start_unit(unit)
    clock = platform.machine.clock
    before = clock.now()
    client.work_slice(progress, slice_ms=1000.0)
    total = clock.now() - before
    overhead = total - 1000.0
    rows = [("per-session overhead (ms)", "912.6", f"{overhead:.1f}")]
    for latency_s, paper in ((2, "0.54"), (8, "0.89")):
        rows.append(
            (f"efficiency @ {latency_s}s sessions", paper,
             f"{flicker_efficiency(latency_s * 1000.0, overhead):.2f}")
        )
    return _table("Distributed computing (Table 4 / Figure 8)",
                  ["Quantity", "Paper", "Measured"], rows)


def build_report() -> str:
    """The full report as a string."""
    sections = [
        "# Flicker reproduction — experiment report",
        "(paper: McCune et al., EuroSys 2008; all measured values are",
        "deterministic virtual-time results from the simulated platform)",
        rootkit_section(),
        skinit_section(),
        ssh_section(),
        ca_section(),
        distributed_section(),
    ]
    return "\n".join(sections)


def main() -> None:
    print(build_report())


if __name__ == "__main__":
    main()
