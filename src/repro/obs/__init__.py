"""Observability layer: metrics, hierarchical spans, deterministic exporters.

The paper's core claims are quantitative — the Figure 2 session timeline,
Table 2's SKINIT costs, Figure 8's TPM-dominated overheads — and this
package makes them first-class observable artifacts rather than ad-hoc
prints:

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms with *fixed* bucket boundaries, so every snapshot of a seeded
  run is byte-deterministic.
* :mod:`repro.obs.spans` — hierarchical spans layered on the virtual
  clock (session → suspend/SKINIT/PAL phases → individual TPM commands),
  recorded by an :class:`~repro.obs.spans.ObservabilityHub`.
* :mod:`repro.obs.export` — exporters to JSONL and to the Chrome
  ``trace_event`` format loadable in Perfetto / ``chrome://tracing``.

Instrumentation is **opt-in and zero-overhead when disabled**: every hook
in the simulation guards on ``obs is not None`` (a single attribute test),
so the tier-1 suite and the benchmark tables are unaffected unless a
caller enables observability::

    platform = FlickerPlatform(observability=True)
    ...
    platform.obs.spans          # completed spans, virtual-time stamps
    platform.obs.registry       # metrics

See ``docs/OBSERVABILITY.md`` for the full model and a worked CA-session
walkthrough, and ``python -m repro.tools.obs_report`` for the aggregated
Figure 2 / Table 2 style report.
"""

from repro.obs.export import (
    export_chrome_trace,
    export_fleet_chrome_trace,
    export_jsonl,
    metrics_to_jsonl,
    trace_to_chrome_events,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import ObservabilityHub, Span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityHub",
    "Span",
    "export_chrome_trace",
    "export_fleet_chrome_trace",
    "export_jsonl",
    "metrics_to_jsonl",
    "trace_to_chrome_events",
]

# Dependency inversion: the hardware layer exposes
# Machine.enable_observability() but must never import this package (the
# TCB audit forbids it), so the hub constructor is registered from here.
from repro.hw.machine import Machine as _Machine

_Machine.register_hub_factory(ObservabilityHub)
