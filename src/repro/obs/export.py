"""Deterministic exporters: JSONL and Chrome ``trace_event`` format.

Both exporters render only virtual-time data in canonical order with
sorted JSON keys, so two runs with the same seed produce **byte-identical
output** — the property the exporter regression tests pin down.

* :func:`export_jsonl` — one self-describing JSON object per line
  (spans in close order, then instant events, then the metrics
  snapshot).  Greppable, diffable, streams well.
* :func:`export_chrome_trace` — the Trace Event Format understood by
  Perfetto and ``chrome://tracing``: complete (``"ph": "X"``) duration
  events for spans plus instant (``"ph": "i"``) events, with virtual
  milliseconds mapped to trace microseconds.
* :func:`trace_to_chrome_events` — bridges the flat
  :class:`~repro.sim.trace.EventTrace` into instant events, preserving
  the trace's total order via a ``seq`` argument even where virtual
  timestamps collide.

Example
-------
>>> from repro.sim.clock import VirtualClock
>>> from repro.obs.spans import ObservabilityHub
>>> clock = VirtualClock()
>>> hub = ObservabilityHub(clock)
>>> with hub.span("session", category="session"):
...     _ = clock.advance(1.5)
>>> print(export_jsonl(hub).splitlines()[0])
{"format": "repro-obs", "type": "meta", "version": 1}
>>> import json
>>> doc = json.loads(export_chrome_trace(hub))
>>> [e["ph"] for e in doc["traceEvents"]]
['M', 'X']
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.spans import ObservabilityHub
    from repro.sim.trace import EventTrace

#: Format tag and version stamped into every export.
FORMAT_NAME = "repro-obs"
FORMAT_VERSION = 1


def _dumps(obj: Any) -> str:
    """Canonical single-line JSON: sorted keys, no whitespace drift."""
    return json.dumps(obj, sort_keys=True, separators=(", ", ": "))


# -- JSONL --------------------------------------------------------------------


def metrics_to_jsonl(registry: MetricsRegistry) -> str:
    """The registry snapshot as ``{"type": "metric", ...}`` lines."""
    lines = [
        _dumps({"type": "metric", **sample}) for sample in registry.snapshot()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def export_jsonl(hub: "ObservabilityHub") -> str:
    """The whole hub — spans, instant events, metrics — as JSONL."""
    lines: List[str] = [
        _dumps({"type": "meta", "format": FORMAT_NAME, "version": FORMAT_VERSION})
    ]
    for span in hub.spans:
        lines.append(_dumps({
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "cat": span.category,
            "start_ms": span.start_ms,
            "end_ms": span.end_ms,
            "args": span.args,
        }))
    for event in hub.events:
        lines.append(_dumps({
            "type": "event",
            "seq": event.seq,
            "name": event.name,
            "cat": event.category,
            "time_ms": event.time_ms,
            "args": event.args,
        }))
    for sample in hub.registry.snapshot():
        lines.append(_dumps({"type": "metric", **sample}))
    return "\n".join(lines) + "\n"


# -- Chrome trace_event -------------------------------------------------------

#: Default virtual process/thread: the (single) simulated platform.
#: Spans/events carrying a ``machine`` attribute are mapped to their own
#: pid instead, so a fleet trace renders one track per machine.
_PID = 1
_TID = 1


def _machine_pids(machines) -> Dict[Any, int]:
    """Deterministic machine-label → pid assignment.

    ``None`` (no machine attribute) keeps the legacy pid 1; named
    machines get pids 2, 3, ... in sorted-label order, so the mapping —
    and hence the exported bytes — never depends on event order.
    """
    mapping: Dict[Any, int] = {None: _PID}
    for offset, label in enumerate(sorted(m for m in machines if m is not None)):
        mapping[label] = _PID + 1 + offset
    return mapping


def trace_to_chrome_events(
    trace: "EventTrace", machine: str = None, pid: int = _PID
) -> List[Dict[str, Any]]:
    """Instant events for every :class:`~repro.sim.trace.TraceEvent`.

    The trace is totally ordered by emission; virtual timestamps alone
    cannot encode that (several events may share one timestamp), so each
    event carries its position as ``args["seq"]`` — sorting by
    ``(ts, args.seq)`` reconstructs the exact original order.  Pass
    ``machine``/``pid`` to place the events on a fleet machine's track.
    """
    events: List[Dict[str, Any]] = []
    for seq, event in enumerate(trace):
        args = {"seq": seq, **{k: v for k, v in sorted(event.detail.items())}}
        if machine is not None:
            args.setdefault("machine", machine)
        events.append({
            "ph": "i",
            "s": "t",
            "name": f"{event.source}/{event.kind}",
            "cat": event.source,
            "ts": event.time_ms * 1000.0,
            "pid": pid,
            "tid": _TID,
            "args": args,
        })
    return events


def _process_metadata(pids: Dict[Any, int]) -> List[Dict[str, Any]]:
    """One ``process_name`` metadata record per track, default first."""
    events: List[Dict[str, Any]] = [{
        "ph": "M",
        "name": "process_name",
        "pid": _PID,
        "tid": _TID,
        "args": {"name": "flicker-virtual-platform"},
    }]
    for label, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        if label is None:
            continue
        events.append({
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": _TID,
            "args": {"name": f"flicker-virtual-platform/{label}"},
        })
    return events


def export_chrome_trace(
    hub: "ObservabilityHub", trace: "EventTrace" = None
) -> str:
    """The hub (and optionally the raw event trace) in Trace Event Format.

    Load the result in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``; virtual milliseconds appear as microseconds
    scaled by 1000 with ``displayTimeUnit`` set to ``ms``.  Spans and
    events whose args carry a ``machine`` label are emitted on that
    machine's own track (distinct pid); without machine labels the
    output is byte-identical to the single-track format.
    """
    pids = _machine_pids(
        {s.args.get("machine") for s in hub.spans}
        | {e.args.get("machine") for e in hub.events}
    )
    events: List[Dict[str, Any]] = _process_metadata(pids)
    for span in sorted(hub.spans, key=lambda s: (s.start_ms, s.span_id)):
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "ts": span.start_ms * 1000.0,
            "dur": span.duration_ms * 1000.0,
            "pid": pids[span.args.get("machine")],
            "tid": _TID,
            "args": {"id": span.span_id, "parent": span.parent_id, **span.args},
        })
    for event in hub.events:
        events.append({
            "ph": "i",
            "s": "t",
            "name": event.name,
            "cat": event.category,
            "ts": event.time_ms * 1000.0,
            "pid": pids[event.args.get("machine")],
            "tid": _TID,
            "args": {"seq": event.seq, **event.args},
        })
    if trace is not None:
        events.extend(trace_to_chrome_events(trace))
    doc = {"displayTimeUnit": "ms", "traceEvents": events}
    return json.dumps(doc, sort_keys=True, separators=(", ", ": ")) + "\n"


def export_fleet_chrome_trace(
    hubs: Dict[str, "ObservabilityHub"],
    traces: Dict[str, "EventTrace"] = None,
) -> str:
    """A merged Trace Event export for a whole fleet.

    ``hubs`` maps machine id → that machine's hub (``traces`` likewise,
    optional).  Each machine's spans/events land on its own track; span
    ids are per-machine namespaces, so cross-machine span ids may repeat
    — the ``machine`` arg disambiguates.  Machines are merged in sorted
    id order for byte-deterministic output.
    """
    pids = _machine_pids(set(hubs))
    events: List[Dict[str, Any]] = _process_metadata(pids)
    for machine in sorted(hubs):
        hub = hubs[machine]
        pid = pids[machine]
        for span in sorted(hub.spans, key=lambda s: (s.start_ms, s.span_id)):
            args = {"id": span.span_id, "parent": span.parent_id, **span.args}
            args.setdefault("machine", machine)
            events.append({
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "ts": span.start_ms * 1000.0,
                "dur": span.duration_ms * 1000.0,
                "pid": pid,
                "tid": _TID,
                "args": args,
            })
        for event in hub.events:
            args = {"seq": event.seq, **event.args}
            args.setdefault("machine", machine)
            events.append({
                "ph": "i",
                "s": "t",
                "name": event.name,
                "cat": event.category,
                "ts": event.time_ms * 1000.0,
                "pid": pid,
                "tid": _TID,
                "args": args,
            })
        if traces is not None and machine in traces:
            events.extend(
                trace_to_chrome_events(traces[machine], machine=machine, pid=pid)
            )
    doc = {"displayTimeUnit": "ms", "traceEvents": events}
    return json.dumps(doc, sort_keys=True, separators=(", ", ": ")) + "\n"
