"""Hierarchical spans over virtual time, and the hub that records them.

A :class:`Span` is a named interval of *virtual* milliseconds with a
parent pointer, so a recorded run forms a forest: a ``session`` span
contains the ``flicker-session`` attempt(s), each attempt contains the
Figure 2 phase spans (``suspend-os``, ``skinit``, ``pal-exec``, ...), and
each phase contains the individual TPM command spans issued inside it.

The :class:`ObservabilityHub` is the single recording object.  It is a
span listener for :class:`~repro.sim.clock.VirtualClock` (every existing
``clock.span(...)`` in the simulation becomes a recorded span with the
correct hierarchy, for free), the sink for TPM per-command spans, and the
owner of the run's :class:`~repro.obs.metrics.MetricsRegistry`.

Nothing here reads the wall clock; all timestamps are deterministic
virtual time, which is what makes exported traces byte-identical across
seeded runs.

Example
-------
>>> from repro.sim.clock import VirtualClock
>>> clock = VirtualClock()
>>> hub = ObservabilityHub(clock)
>>> clock.set_span_listener(hub)
>>> with clock.span("flicker-session"):
...     with clock.span("skinit"):
...         _ = clock.advance(14.3)
>>> [(s.name, s.parent_id) for s in hub.spans]
[('skinit', 1), ('flicker-session', None)]
>>> hub.spans[0].duration_ms
14.3
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import VirtualClock


@dataclass
class Span:
    """One named interval of virtual time.

    ``span_id`` values are assigned in *open* order starting from 1;
    ``parent_id`` is the id of the span that was open when this one
    started (``None`` for roots).  Completed spans are stored in *close*
    order, mirroring how a trace viewer receives duration events.
    """

    span_id: int
    name: str
    category: str
    start_ms: float
    end_ms: float = 0.0
    parent_id: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        """Length of the span in virtual milliseconds."""
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration mark (e.g. ``dynamic_pcr_reset``) on the timeline."""

    seq: int
    name: str
    category: str
    time_ms: float
    args: Dict[str, Any] = field(default_factory=dict)


class ObservabilityHub:
    """Records spans, instant events, and metrics for one platform run.

    Wire-up is done by :meth:`repro.hw.machine.Machine.enable_observability`;
    components reach the hub through ``machine.obs`` / ``tpm.obs`` and
    guard every touch with ``if obs is not None`` so a platform without a
    hub pays only one attribute test per instrumentation site.
    """

    def __init__(self, clock: VirtualClock, registry: Optional[MetricsRegistry] = None,
                 machine: Optional[str] = None) -> None:
        self.clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Fleet identity stamped into every span/event's args (``None``
        #: on standalone platforms keeps exports byte-identical to the
        #: pre-fleet format).  Exporters map distinct machines to
        #: distinct Chrome-trace tracks.
        self.machine = machine
        #: Completed spans, in close order (deterministic).
        self.spans: List[Span] = []
        #: Instant events, in emission order.
        self.events: List[InstantEvent] = []
        self._open: List[Span] = []
        self._next_id = 1
        self._next_seq = 1

    # -- direct span API ------------------------------------------------------

    def _stamp(self, args: Dict[str, Any]) -> Dict[str, Any]:
        """Tag ``args`` with this hub's machine identity, if it has one."""
        if self.machine is not None:
            args.setdefault("machine", self.machine)
        return args

    def open_span(self, name: str, category: str = "span", **args: Any) -> Span:
        """Open a span starting now; it becomes the parent of later opens."""
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start_ms=self.clock.now(),
            parent_id=self._open[-1].span_id if self._open else None,
            args=self._stamp(dict(args)),
        )
        self._next_id += 1
        self._open.append(span)
        return span

    def close_span(self, span: Span, **args: Any) -> Span:
        """Close ``span`` at the current virtual time and record it."""
        if span in self._open:
            # Pop it (and anything left dangling above it, defensively).
            while self._open:
                top = self._open.pop()
                if top is span:
                    break
        span.end_ms = self.clock.now()
        span.args.update(args)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, category: str = "span", **args: Any) -> Iterator[Span]:
        """Context manager opening/closing a span around a block."""
        span = self.open_span(name, category, **args)
        try:
            yield span
        finally:
            self.close_span(span)

    def record_complete(
        self, name: str, category: str, duration_ms: float, **args: Any
    ) -> Span:
        """Record a span of ``duration_ms`` that *ends now*.

        Used for operations whose cost was just charged to the clock in
        one step (TPM commands): the span is parented under whatever span
        is currently open.
        """
        end = self.clock.now()
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start_ms=end - duration_ms,
            end_ms=end,
            parent_id=self._open[-1].span_id if self._open else None,
            args=self._stamp(dict(args)),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def event(self, name: str, category: str = "event", **args: Any) -> InstantEvent:
        """Record an instant (zero-duration) event at the current time."""
        event = InstantEvent(
            seq=self._next_seq,
            name=name,
            category=category,
            time_ms=self.clock.now(),
            args=self._stamp(dict(args)),
        )
        self._next_seq += 1
        self.events.append(event)
        return event

    # -- VirtualClock span-listener protocol ----------------------------------

    def span_opened(self, name: str, start_ms: float) -> None:
        """Clock callback: a ``clock.span(name)`` block was entered."""
        self.open_span(name, category="phase")

    def span_closed(self, name: str, start_ms: float, end_ms: float) -> None:
        """Clock callback: the matching block exited."""
        if self._open and self._open[-1].name == name:
            self.close_span(self._open[-1])
        # A mismatch can only happen if the hub was wired mid-span; the
        # orphan close is dropped rather than corrupting the hierarchy.

    # -- queries --------------------------------------------------------------

    def find_spans(self, name: Optional[str] = None,
                   category: Optional[str] = None) -> List[Span]:
        """Completed spans filtered by name and/or category."""
        out = self.spans
        if name is not None:
            out = [s for s in out if s.name == name]
        if category is not None:
            out = [s for s in out if s.category == category]
        return list(out)

    def children(self, span: Span) -> List[Span]:
        """Direct children of ``span`` among completed spans."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def descendants(self, span: Span) -> List[Span]:
        """All completed spans below ``span`` in the hierarchy."""
        wanted = {span.span_id}
        out: List[Span] = []
        # spans close child-before-parent, so iterate repeatedly until
        # the frontier stops growing (the forest is small).
        remaining = list(self.spans)
        grew = True
        while grew:
            grew = False
            still: List[Span] = []
            for s in remaining:
                if s.parent_id in wanted:
                    wanted.add(s.span_id)
                    out.append(s)
                    grew = True
                else:
                    still.append(s)
            remaining = still
        out.sort(key=lambda s: s.span_id)
        return out
