"""Metrics primitives: counters, gauges, histograms, and their registry.

The design follows the Prometheus data model (monotonic counters, point
gauges, cumulative-bucket histograms) but is deliberately simpler and
fully deterministic: bucket boundaries are fixed at construction time and
:meth:`MetricsRegistry.snapshot` renders samples in a canonical sorted
order, so two seeded runs of the simulation produce byte-identical
metric output.

Example
-------
>>> registry = MetricsRegistry()
>>> sessions = registry.counter("sessions_total", "Completed sessions")
>>> sessions.inc(pal="ca-sign")
>>> sessions.inc(2, pal="ca-sign")
>>> sessions.value(pal="ca-sign")
3
>>> lat = registry.histogram("tpm_command_ms", "Per-command latency",
...                          buckets=(1.0, 10.0, 100.0))
>>> lat.observe(9.7, op="seal")
>>> lat.observe(898.0, op="unseal")
>>> [s["name"] for s in registry.snapshot()]
['sessions_total', 'tpm_command_ms', 'tpm_command_ms']
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram boundaries (milliseconds of virtual time), spanning
#: the sub-millisecond SLB Core bookkeeping up to the ~5 s RSA keygens.
#: Fixed so that every snapshot of a seeded run is byte-identical.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Canonical form of a label set: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base class: a named metric with labelled children."""

    kind = "metric"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text

    def _samples(self) -> List[Dict[str, Any]]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count, optionally partitioned by labels.

    >>> c = Counter("retries_total")
    >>> c.inc()
    >>> c.inc(3, op="quote")
    >>> (c.value(), c.value(op="quote"))
    (1, 3)
    """

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled child."""
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of the labelled child (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0)

    def _samples(self) -> List[Dict[str, Any]]:
        return [
            {"kind": self.kind, "name": self.name, "labels": dict(key),
             "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge(Metric):
    """A value that can go up and down (e.g. bytes currently sealed)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelled child to ``value``."""
        self._values[_label_key(labels)] = value

    def add(self, delta: float, **labels: Any) -> None:
        """Adjust the labelled child by ``delta`` (may be negative)."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + delta

    def value(self, **labels: Any) -> float:
        """Current value of the labelled child (0 if never set)."""
        return self._values.get(_label_key(labels), 0)

    def _samples(self) -> List[Dict[str, Any]]:
        return [
            {"kind": self.kind, "name": self.name, "labels": dict(key),
             "value": value}
            for key, value in sorted(self._values.items())
        ]


class _HistogramChild:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * num_buckets
        self.count = 0
        self.sum = 0.0


class Histogram(Metric):
    """A distribution with fixed, cumulative bucket boundaries.

    Boundaries are upper-inclusive (Prometheus ``le`` semantics) and an
    implicit ``+Inf`` bucket always exists, so ``count`` equals the last
    cumulative bucket.

    >>> h = Histogram("skinit_ms", buckets=(10.0, 100.0))
    >>> for ms in (11.9, 45.0, 89.2, 177.5):
    ...     h.observe(ms)
    >>> h.snapshot_child()["buckets"]
    [['10.0', 0], ['100.0', 3], ['+Inf', 4]]
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        super().__init__(name, help_text)
        boundaries = tuple(float(b) for b in buckets)
        if not boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(boundaries) != sorted(set(boundaries)):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.boundaries = boundaries
        self._children: Dict[LabelKey, _HistogramChild] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation in the labelled child."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _HistogramChild(len(self.boundaries))
        child.count += 1
        child.sum += value
        for i, boundary in enumerate(self.boundaries):
            if value <= boundary:
                child.bucket_counts[i] += 1
                break

    def count(self, **labels: Any) -> int:
        """Number of observations in the labelled child."""
        child = self._children.get(_label_key(labels))
        return child.count if child else 0

    def total(self, **labels: Any) -> float:
        """Sum of observations in the labelled child."""
        child = self._children.get(_label_key(labels))
        return child.sum if child else 0.0

    def snapshot_child(self, **labels: Any) -> Dict[str, Any]:
        """Cumulative-bucket view of one labelled child."""
        key = _label_key(labels)
        child = self._children.get(key) or _HistogramChild(len(self.boundaries))
        cumulative: List[List[Any]] = []
        running = 0
        for boundary, n in zip(self.boundaries, child.bucket_counts):
            running += n
            cumulative.append([repr(boundary), running])
        cumulative.append(["+Inf", child.count])
        return {
            "kind": self.kind, "name": self.name, "labels": dict(key),
            "count": child.count, "sum": child.sum, "buckets": cumulative,
        }

    def _samples(self) -> List[Dict[str, Any]]:
        return [
            self.snapshot_child(**dict(key))
            for key in sorted(self._children)
        ]


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors.

    Accessors are idempotent: asking for an existing name returns the
    existing metric (help text and buckets from the first registration
    win), so instrumentation sites can call ``registry.counter(...)``
    on every hit without bookkeeping.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help_text, **kwargs)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the :class:`Counter` named ``name``."""
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create the :class:`Gauge` named ``name``."""
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        """Get or create the :class:`Histogram` named ``name``."""
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        """The metric named ``name``, or ``None``."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every sample of every metric, in canonical sorted order.

        The order (metric name, then label set) and the fixed bucket
        boundaries make the snapshot byte-deterministic for seeded runs.
        """
        samples: List[Dict[str, Any]] = []
        for name in sorted(self._metrics):
            samples.extend(self._metrics[name]._samples())
        return samples

    def format(self) -> str:
        """Human-readable one-line-per-sample rendering."""
        lines = []
        for sample in self.snapshot():
            labels = ",".join(f"{k}={v}" for k, v in sorted(sample["labels"].items()))
            suffix = f"{{{labels}}}" if labels else ""
            if sample["kind"] == "histogram":
                lines.append(
                    f"{sample['name']}{suffix} count={sample['count']} "
                    f"sum={sample['sum']:.3f}"
                )
            else:
                lines.append(f"{sample['name']}{suffix} {sample['value']}")
        return "\n".join(lines)
