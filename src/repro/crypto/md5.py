"""MD5 (RFC 1321), implemented from the specification.

The SSH application hashes passwords with ``md5crypt`` — the classic
``$1$``-prefixed crypt scheme used in ``/etc/passwd`` on the paper's test
systems — which is built on MD5 (:mod:`repro.crypto.md5crypt`).
"""

from __future__ import annotations

import math
import struct

_S = (
    [7, 12, 17, 22] * 4
    + [5, 9, 14, 20] * 4
    + [4, 11, 16, 23] * 4
    + [6, 10, 15, 21] * 4
)

_K = [int(abs(math.sin(i + 1)) * 2 ** 32) & 0xFFFFFFFF for i in range(64)]

_MASK32 = 0xFFFFFFFF


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


class MD5:
    """Incremental MD5."""

    digest_size = 16
    block_size = 64

    def __init__(self, data: bytes = b"") -> None:
        self._state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476]
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "MD5":
        """Absorb ``data``; returns self for chaining."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]
        return self

    def _compress(self, block: bytes) -> None:
        m = struct.unpack("<16I", block)
        a, b, c, d = self._state
        for i in range(64):
            if i < 16:
                f = (b & c) | ((~b) & d)
                g = i
            elif i < 32:
                f = (d & b) | ((~d) & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | (~d & _MASK32))
                g = (7 * i) % 16
            f = (f + a + _K[i] + m[g]) & _MASK32
            a, d, c = d, c, b
            b = (b + _rotl(f, _S[i])) & _MASK32
        self._state = [
            (self._state[0] + a) & _MASK32,
            (self._state[1] + b) & _MASK32,
            (self._state[2] + c) & _MASK32,
            (self._state[3] + d) & _MASK32,
        ]

    def digest(self) -> bytes:
        """Return the 16-byte digest without disturbing internal state."""
        clone = self.copy()
        pad_len = (55 - clone._length) % 64
        padding = b"\x80" + b"\x00" * pad_len + struct.pack("<Q", clone._length * 8)
        clone._length += len(padding)
        clone._buffer += padding
        while len(clone._buffer) >= 64:
            clone._compress(clone._buffer[:64])
            clone._buffer = clone._buffer[64:]
        return struct.pack("<4I", *clone._state)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "MD5":
        """Return an independent copy of the running hash state."""
        clone = MD5()
        clone._state = list(self._state)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def md5(data: bytes) -> bytes:
    """One-shot MD5 digest of ``data``."""
    return MD5(data).digest()
