"""RC4 stream cipher.

Part of the paper's PAL crypto inventory (Figure 6).  RC4 was already
deprecated for new designs by 2008 but remained common in SSH/TLS stacks;
the reproduction ships it for completeness and uses it nowhere
security-critical.
"""

from __future__ import annotations

from repro.errors import ReproError


class RC4:
    """RC4 keystream generator with encrypt/decrypt (they are identical)."""

    def __init__(self, key: bytes) -> None:
        if not 1 <= len(key) <= 256:
            raise ReproError("RC4 key must be 1..256 bytes")
        s = list(range(256))
        j = 0
        for i in range(256):
            j = (j + s[i] + key[i % len(key)]) % 256
            s[i], s[j] = s[j], s[i]
        self._s = s
        self._i = 0
        self._j = 0

    def keystream(self, n: int) -> bytes:
        """Return the next ``n`` keystream bytes."""
        s, i, j = self._s, self._i, self._j
        out = bytearray()
        for _ in range(n):
            i = (i + 1) % 256
            j = (j + s[i]) % 256
            s[i], s[j] = s[j], s[i]
            out.append(s[(s[i] + s[j]) % 256])
        self._i, self._j = i, j
        return bytes(out)

    def process(self, data: bytes) -> bytes:
        """XOR ``data`` with the keystream (encryption == decryption)."""
        ks = self.keystream(len(data))
        return bytes(a ^ b for a, b in zip(data, ks))

    # Aliases matching conventional cipher interfaces.
    encrypt = process
    decrypt = process
