"""SHA-1 (FIPS 180-1), implemented from the specification.

SHA-1 is the measurement hash of the TPM v1.2 architecture: every PCR
extend, every SLB measurement, and every event-log entry in this
reproduction is a SHA-1 digest, exactly as in the paper.  (SHA-1's collision
weaknesses post-date the paper's threat model; we reproduce the system as
published.)

The :class:`SHA1` class is the from-spec reference implementation; the
one-shot :func:`sha1` and :func:`sha1_cached` helpers — which carry all
of the fleet's measurement traffic — delegate to :mod:`hashlib`, pinned
byte-equal to the reference by the test suite.
"""

from __future__ import annotations

import functools as _functools
import hashlib as _hashlib
import struct

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
_MASK32 = 0xFFFFFFFF


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


class SHA1:
    """Incremental SHA-1 with the familiar ``update``/``digest`` interface."""

    digest_size = 20
    block_size = 64

    def __init__(self, data: bytes = b"") -> None:
        self._h = list(_H0)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "SHA1":
        """Absorb ``data``; returns self for chaining."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]
        return self

    def _compress(self, block: bytes) -> None:
        # The round structure below is the FIPS 180-1 algorithm with the
        # four round families unrolled into separate loops and the rotate
        # inlined — pure-Python SHA-1 is the simulation's hottest path
        # (every SKINIT hashes up to 64 KB).
        w = list(struct.unpack(">16I", block))
        append = w.append
        for t in range(16, 80):
            x = w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]
            append(((x << 1) | (x >> 31)) & 0xFFFFFFFF)
        a, b, c, d, e = self._h
        for t in range(0, 20):
            tmp = ((((a << 5) | (a >> 27)) + ((b & c) | (~b & d)) + e
                    + 0x5A827999 + w[t]) & _MASK32)
            e, d, c, b, a = d, c, ((b << 30) | (b >> 2)) & _MASK32, a, tmp
        for t in range(20, 40):
            tmp = ((((a << 5) | (a >> 27)) + (b ^ c ^ d) + e
                    + 0x6ED9EBA1 + w[t]) & _MASK32)
            e, d, c, b, a = d, c, ((b << 30) | (b >> 2)) & _MASK32, a, tmp
        for t in range(40, 60):
            tmp = ((((a << 5) | (a >> 27)) + ((b & c) | (b & d) | (c & d)) + e
                    + 0x8F1BBCDC + w[t]) & _MASK32)
            e, d, c, b, a = d, c, ((b << 30) | (b >> 2)) & _MASK32, a, tmp
        for t in range(60, 80):
            tmp = ((((a << 5) | (a >> 27)) + (b ^ c ^ d) + e
                    + 0xCA62C1D6 + w[t]) & _MASK32)
            e, d, c, b, a = d, c, ((b << 30) | (b >> 2)) & _MASK32, a, tmp
        self._h = [
            (self._h[0] + a) & _MASK32,
            (self._h[1] + b) & _MASK32,
            (self._h[2] + c) & _MASK32,
            (self._h[3] + d) & _MASK32,
            (self._h[4] + e) & _MASK32,
        ]

    def digest(self) -> bytes:
        """Return the 20-byte digest without disturbing internal state."""
        clone = SHA1()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        # Padding: 0x80, zeros, then the 64-bit bit length.
        pad_len = (55 - clone._length) % 64
        padding = b"\x80" + b"\x00" * pad_len + struct.pack(">Q", clone._length * 8)
        clone._length += len(padding)
        clone._buffer += padding
        while len(clone._buffer) >= 64:
            clone._compress(clone._buffer[:64])
            clone._buffer = clone._buffer[64:]
        return struct.pack(">5I", *clone._h)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "SHA1":
        """Return an independent copy of the running hash state."""
        clone = SHA1()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest of ``data``."""
    return _hashlib.sha1(data).digest()


@_functools.lru_cache(maxsize=128)
def sha1_cached(data: bytes) -> bytes:
    """Content-memoized SHA-1 for large, frequently re-measured blobs.

    The simulated platform measures the same 64-KB SLB image on every
    SKINIT; caching by content keeps the simulation honest (different
    bytes always produce a fresh digest) while avoiding redundant
    hashing.  Use plain :func:`sha1` for anything secret — the cache
    retains references to its inputs.
    """
    return sha1(data)
