"""md5crypt — the ``$1$`` password hash from FreeBSD/glibc ``crypt(3)``.

The SSH PAL (paper §6.3.1, Figure 7) computes ``md5crypt(salt, password)``
and outputs the hash for comparison with the server's ``/etc/passwd``
entry.  This is Poul-Henning Kamp's original algorithm: a salted MD5
strengthened with 1000 rounds and a custom base64 alphabet.
"""

from __future__ import annotations

from repro.crypto.md5 import MD5, md5
from repro.errors import ReproError

_MAGIC = b"$1$"
_ITOA64 = b"./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"


def _to64(value: int, length: int) -> bytes:
    out = bytearray()
    for _ in range(length):
        out.append(_ITOA64[value & 0x3F])
        value >>= 6
    return bytes(out)


def md5crypt(password: bytes, salt: bytes) -> str:
    """Return the full crypt string ``$1$<salt>$<hash>``.

    ``salt`` is truncated to 8 bytes as in the reference implementation;
    a leading ``$1$`` magic on the salt is tolerated and stripped.
    """
    if isinstance(password, str):  # convenience for callers
        password = password.encode("utf-8")
    if isinstance(salt, str):
        salt = salt.encode("utf-8")
    if salt.startswith(_MAGIC):
        salt = salt[len(_MAGIC):]
    if b"$" in salt:
        salt = salt[: salt.index(b"$")]
    salt = salt[:8]
    if not salt:
        raise ReproError("md5crypt requires a non-empty salt")
    if any(b not in _ITOA64 for b in salt):
        # crypt(3) salts are drawn from the itoa64 alphabet; anything else
        # cannot round-trip through /etc/passwd.
        raise ReproError("md5crypt salt must use the ./0-9A-Za-z alphabet")

    ctx = MD5(password + _MAGIC + salt)
    alternate = md5(password + salt + password)
    remaining = len(password)
    while remaining > 0:
        ctx.update(alternate[: min(16, remaining)])
        remaining -= 16
    bits = len(password)
    while bits:
        if bits & 1:
            ctx.update(b"\x00")
        else:
            ctx.update(password[:1])
        bits >>= 1
    final = ctx.digest()

    # 1000 strengthening rounds with the reference's quirky schedule.
    for i in range(1000):
        round_ctx = MD5()
        if i & 1:
            round_ctx.update(password)
        else:
            round_ctx.update(final)
        if i % 3:
            round_ctx.update(salt)
        if i % 7:
            round_ctx.update(password)
        if i & 1:
            round_ctx.update(final)
        else:
            round_ctx.update(password)
        final = round_ctx.digest()

    encoded = bytearray()
    for a, b, c in ((0, 6, 12), (1, 7, 13), (2, 8, 14), (3, 9, 15), (4, 10, 5)):
        encoded += _to64((final[a] << 16) | (final[b] << 8) | final[c], 4)
    encoded += _to64(final[11], 2)

    return (_MAGIC + salt + b"$" + bytes(encoded)).decode("ascii")


def md5crypt_verify(password: bytes, crypt_string: str) -> bool:
    """Check ``password`` against a full ``$1$salt$hash`` crypt string."""
    parts = crypt_string.split("$")
    if len(parts) != 4 or parts[1] != "1":
        raise ReproError("not an md5crypt string")
    return md5crypt(password, parts[2].encode("ascii")) == crypt_string
