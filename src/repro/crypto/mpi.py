"""Multi-precision integer routines: modular arithmetic and primality.

The paper's crypto library bundles a multi-precision integer library for
RSA.  Python's ``int`` is already arbitrary precision, so this module
supplies the number-theoretic layer above it: modular exponentiation,
the extended Euclidean algorithm, modular inverse, Miller–Rabin primality
testing, and prime generation with trial division by small primes.

:func:`mod_pow` delegates to the interpreter's three-argument ``pow`` —
it is the hottest arithmetic in the whole simulation (every keygen,
signature, and verification runs through it, and a 10,000-machine fleet
performs tens of thousands of them) — while
:func:`mod_pow_reference` keeps the explicit square-and-multiply
spelled out, pinned equal to the fast path by the test suite.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ReproError
from repro.sim.rng import DeterministicRNG

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES: Tuple[int, ...] = tuple(
    p for p in range(2, 2000)
    if all(p % q for q in range(2, int(p ** 0.5) + 1))
)


def mod_pow(base: int, exponent: int, modulus: int) -> int:
    """Modular exponentiation ``base ** exponent % modulus``."""
    if modulus <= 0:
        raise ReproError("modulus must be positive")
    if exponent < 0:
        raise ReproError("negative exponents not supported; invert first")
    return pow(base, exponent, modulus)


def mod_pow_reference(base: int, exponent: int, modulus: int) -> int:
    """Left-to-right square-and-multiply modular exponentiation.

    The explicit algorithm :func:`mod_pow` models; kept (and pinned equal
    by the tests) so the arithmetic stays auditable.
    """
    if modulus <= 0:
        raise ReproError("modulus must be positive")
    if exponent < 0:
        raise ReproError("negative exponents not supported; invert first")
    base %= modulus
    result = 1 % modulus  # modulus 1 has only the residue 0
    while exponent:
        if exponent & 1:
            result = (result * base) % modulus
        base = (base * base) % modulus
        exponent >>= 1
    return result


def gcd(a: int, b: int) -> int:
    """Greatest common divisor (Euclid)."""
    while b:
        a, b = b, a % b
    return abs(a)


def extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return (g, x, y) with a*x + b*y == g == gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def mod_inverse(a: int, modulus: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``modulus``.

    Raises :class:`ReproError` if the inverse does not exist.
    """
    g, x, _ = extended_gcd(a % modulus, modulus)
    if g != 1:
        raise ReproError(f"{a} has no inverse modulo {modulus}")
    return x % modulus


def is_probable_prime(n: int, rng: DeterministicRNG, rounds: int = 24) -> bool:
    """Miller–Rabin primality test with ``rounds`` random witnesses."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randint(2, n - 2)
        x = mod_pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: DeterministicRNG) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ReproError("prime size too small to be useful")
    while True:
        candidate = rng.odd_integer(bits)
        # Quick trial division before the expensive Miller-Rabin rounds.
        if any(candidate % p == 0 for p in _SMALL_PRIMES if p < candidate):
            continue
        if is_probable_prime(candidate, rng):
            return candidate


def int_to_bytes(value: int, length: int) -> bytes:
    """Big-endian fixed-width encoding of a non-negative integer."""
    if value < 0:
        raise ReproError("cannot encode negative integer")
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian decoding of a byte string to a non-negative integer."""
    return int.from_bytes(data, "big")
