"""From-scratch cryptographic substrate.

The paper's PAL-linkable ``Crypto`` module (Figure 6: 2262 LOC) provides a
multi-precision integer library, RSA key generation, RSA encryption and
decryption, SHA-1, SHA-512, MD5, AES, and RC4.  This package reimplements
the same inventory in pure Python so the reproduction's TCB accounting is
honest: nothing in a simulated PAL depends on ``hashlib`` or an external
crypto library.

All hash implementations are validated against known-answer vectors in the
test suite; RSA/PKCS#1 are validated by round-trip and cross-checks; AES is
validated against the FIPS-197 vectors; RC4 against the RFC 6229 streams;
md5crypt against glibc-produced hashes.
"""

from repro.crypto.sha1 import sha1, SHA1
from repro.crypto.sha512 import sha512, SHA512
from repro.crypto.md5 import md5, MD5
from repro.crypto.hmac import hmac_sha1, hmac_md5
from repro.crypto.aes import AES128
from repro.crypto.rc4 import RC4
from repro.crypto.mpi import (
    mod_pow,
    mod_inverse,
    is_probable_prime,
    generate_prime,
    gcd,
)
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, RSAPrivateKey, generate_rsa_keypair
from repro.crypto.pkcs1 import (
    pkcs1_encrypt,
    pkcs1_decrypt,
    pkcs1_sign_sha1,
    pkcs1_verify_sha1,
)
from repro.crypto.md5crypt import md5crypt
from repro.crypto.drbg import HashDRBG

__all__ = [
    "sha1", "SHA1", "sha512", "SHA512", "md5", "MD5",
    "hmac_sha1", "hmac_md5",
    "AES128", "RC4",
    "mod_pow", "mod_inverse", "is_probable_prime", "generate_prime", "gcd",
    "RSAKeyPair", "RSAPublicKey", "RSAPrivateKey", "generate_rsa_keypair",
    "pkcs1_encrypt", "pkcs1_decrypt", "pkcs1_sign_sha1", "pkcs1_verify_sha1",
    "md5crypt", "HashDRBG",
]
