"""PKCS#1 v1.5 encryption and signatures (RFC 2437).

The paper encrypts the user's SSH password with "PKCS1 encryption which is
chosen-ciphertext-secure and nonmalleable" (§6.3.1, citing Kaliski &
Staddon).  This module implements EME-PKCS1-v1_5 encryption/decryption and
EMSA-PKCS1-v1_5 signatures over SHA-1 with the standard DigestInfo prefix.
"""

from __future__ import annotations

from repro.crypto.mpi import bytes_to_int, int_to_bytes
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.crypto.sha1 import sha1
from repro.errors import ReproError
from repro.sim.rng import DeterministicRNG

# ASN.1 DigestInfo prefix for SHA-1 (RFC 2437 §9.2.1).
_SHA1_DIGEST_INFO = bytes.fromhex("3021300906052b0e03021a05000414")


def pkcs1_encrypt(public: RSAPublicKey, message: bytes, rng: DeterministicRNG) -> bytes:
    """EME-PKCS1-v1_5 encrypt ``message`` under ``public``."""
    k = public.modulus_bytes
    if len(message) > k - 11:
        raise ReproError(f"message too long for modulus ({len(message)} > {k - 11})")
    # Padding string PS: nonzero random bytes, at least 8 of them.
    ps = bytearray()
    while len(ps) < k - len(message) - 3:
        byte = rng.bytes(1)
        if byte != b"\x00":
            ps += byte
    em = b"\x00\x02" + bytes(ps) + b"\x00" + message
    return int_to_bytes(public.raw_encrypt(bytes_to_int(em)), k)


def pkcs1_decrypt(private: RSAPrivateKey, ciphertext: bytes) -> bytes:
    """EME-PKCS1-v1_5 decrypt; raises :class:`ReproError` on bad padding."""
    k = private.modulus_bytes
    if len(ciphertext) != k:
        raise ReproError("ciphertext length does not match modulus")
    em = int_to_bytes(private.raw_decrypt(bytes_to_int(ciphertext)), k)
    if em[:2] != b"\x00\x02":
        raise ReproError("PKCS#1 decryption error")
    try:
        sep = em.index(b"\x00", 2)
    except ValueError:
        raise ReproError("PKCS#1 decryption error") from None
    if sep < 10:  # at least 8 bytes of PS
        raise ReproError("PKCS#1 decryption error")
    return em[sep + 1 :]


def _emsa_encode(message: bytes, k: int) -> bytes:
    digest = sha1(message)
    t = _SHA1_DIGEST_INFO + digest
    if k < len(t) + 11:
        raise ReproError("modulus too small for EMSA-PKCS1-v1_5/SHA-1")
    ps = b"\xff" * (k - len(t) - 3)
    return b"\x00\x01" + ps + b"\x00" + t


def pkcs1_sign_sha1(private: RSAPrivateKey, message: bytes) -> bytes:
    """EMSA-PKCS1-v1_5 signature over SHA-1(message)."""
    k = private.modulus_bytes
    em = _emsa_encode(message, k)
    return int_to_bytes(private.raw_sign(bytes_to_int(em)), k)


def pkcs1_verify_sha1(public: RSAPublicKey, message: bytes, signature: bytes) -> bool:
    """Verify an EMSA-PKCS1-v1_5/SHA-1 signature.  Returns a boolean rather
    than raising, because verifiers typically branch on the result."""
    k = public.modulus_bytes
    if len(signature) != k:
        return False
    try:
        em = int_to_bytes(public.raw_verify(bytes_to_int(signature)), k)
        expected = _emsa_encode(message, k)
    except ReproError:
        return False
    return em == expected
