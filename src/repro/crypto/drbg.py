"""Hash-based deterministic random bit generator.

The SSH PAL calls ``TPM_GetRandom`` for 128 bytes and uses them "to seed a
pseudorandom number generator" (paper §7.4.1).  This module is that PRNG: a
simple hash-DRBG in counter mode over our SHA-512, in the spirit of NIST
SP 800-90A's Hash_DRBG (simplified: no personalization string or prediction
resistance, which the simulation does not need).
"""

from __future__ import annotations

from repro.crypto.sha512 import sha512
from repro.errors import ReproError


class HashDRBG:
    """Counter-mode DRBG over SHA-512, seeded once and reseedable."""

    def __init__(self, seed: bytes) -> None:
        if len(seed) < 16:
            raise ReproError("DRBG seed must be at least 16 bytes")
        self._v = sha512(b"flicker-drbg-init" + seed)
        self._counter = 0

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh entropy into the internal state."""
        self._v = sha512(self._v + b"reseed" + entropy)

    def generate(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        if n < 0:
            raise ReproError("cannot generate a negative number of bytes")
        out = bytearray()
        while len(out) < n:
            block = sha512(self._v + self._counter.to_bytes(8, "big"))
            self._counter += 1
            out += block
        # Ratchet the state forward so earlier output cannot be recovered
        # from a later state compromise (backtracking resistance).
        self._v = sha512(self._v + b"ratchet")
        return bytes(out[:n])

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        if lo > hi:
            raise ReproError("empty range")
        span = hi - lo + 1
        nbits = span.bit_length()
        nbytes = (nbits + 7) // 8
        while True:
            candidate = int.from_bytes(self.generate(nbytes), "big")
            candidate &= (1 << nbits) - 1
            if candidate < span:
                return lo + candidate
