"""RSA key generation and raw operations.

The SSH and CA applications (paper §6.3) generate 1024-bit RSA keypairs
inside a PAL using TPM randomness, and the simulated TPM itself uses
2048-bit keys for the SRK/AIK and for sealed storage.  Private-key
operations use the Chinese Remainder Theorem, as any production RSA would.

Key sizes are parameterised: the test suite uses small keys (fast pure
Python), the applications default to the paper's 1024/2048 bits — the
*virtual* cost charged to the clock is taken from the timing profile
regardless, so functional key size and modelled latency are independent
knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.mpi import (
    bytes_to_int,
    gcd,
    generate_prime,
    int_to_bytes,
    mod_inverse,
    mod_pow,
)
from repro.errors import ReproError
from repro.sim.rng import DeterministicRNG

_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RSAPublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    @property
    def modulus_bytes(self) -> int:
        """Width of the modulus in bytes."""
        return (self.n.bit_length() + 7) // 8

    def raw_encrypt(self, m: int) -> int:
        """Textbook RSA public operation m^e mod n."""
        if not 0 <= m < self.n:
            raise ReproError("message representative out of range")
        return mod_pow(m, self.e, self.n)

    raw_verify = raw_encrypt

    def fingerprint(self) -> bytes:
        """SHA-1 fingerprint of the public key encoding (used in event
        logs and attestations)."""
        from repro.crypto.sha1 import sha1

        return sha1(self.encode())

    def encode(self) -> bytes:
        """Deterministic byte encoding: 4-byte lengths + big-endian values."""
        n_bytes = int_to_bytes(self.n, self.modulus_bytes)
        e_bytes = int_to_bytes(self.e, (self.e.bit_length() + 7) // 8 or 1)
        return (
            len(n_bytes).to_bytes(4, "big") + n_bytes
            + len(e_bytes).to_bytes(4, "big") + e_bytes
        )

    @classmethod
    def decode(cls, data: bytes) -> "RSAPublicKey":
        """Inverse of :meth:`encode`."""
        if len(data) < 8:
            raise ReproError("truncated public key encoding")
        n_len = int.from_bytes(data[:4], "big")
        n = bytes_to_int(data[4 : 4 + n_len])
        off = 4 + n_len
        e_len = int.from_bytes(data[off : off + 4], "big")
        e = bytes_to_int(data[off + 4 : off + 4 + e_len])
        if off + 4 + e_len != len(data):
            raise ReproError("trailing bytes in public key encoding")
        return cls(n=n, e=e)


@dataclass(frozen=True)
class RSAPrivateKey:
    """RSA private key with CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def modulus_bytes(self) -> int:
        """Width of the modulus in bytes."""
        return (self.n.bit_length() + 7) // 8

    def public_key(self) -> RSAPublicKey:
        """The matching public key."""
        return RSAPublicKey(n=self.n, e=self.e)

    def raw_decrypt(self, c: int) -> int:
        """CRT private operation c^d mod n."""
        if not 0 <= c < self.n:
            raise ReproError("ciphertext representative out of range")
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = mod_inverse(self.q, self.p)
        m1 = mod_pow(c, dp, self.p)
        m2 = mod_pow(c, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q

    raw_sign = raw_decrypt

    def encode(self) -> bytes:
        """Deterministic byte encoding of all five parameters."""
        parts = []
        for value in (self.n, self.e, self.d, self.p, self.q):
            raw = int_to_bytes(value, (value.bit_length() + 7) // 8 or 1)
            parts.append(len(raw).to_bytes(4, "big") + raw)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "RSAPrivateKey":
        """Inverse of :meth:`encode`."""
        values = []
        off = 0
        for _ in range(5):
            if off + 4 > len(data):
                raise ReproError("truncated private key encoding")
            length = int.from_bytes(data[off : off + 4], "big")
            off += 4
            values.append(bytes_to_int(data[off : off + length]))
            off += length
        if off != len(data):
            raise ReproError("trailing bytes in private key encoding")
        n, e, d, p, q = values
        return cls(n=n, e=e, d=d, p=p, q=q)


@dataclass(frozen=True)
class RSAKeyPair:
    """Convenience bundle of a private key and its public half."""

    private: RSAPrivateKey
    public: RSAPublicKey


#: Memoized keygen results keyed by (bits, rng state before generation).
#: Key generation is a pure function of the RNG state, so identical seeds —
#: ubiquitous across the deterministic test suite and fault campaigns —
#: can reuse the keypair *and* the RNG state it left behind, skipping the
#: prime search (the dominant cost of platform construction).
_KEYGEN_CACHE: dict = {}
_KEYGEN_CACHE_MAX = 256


def keygen_cache_info() -> dict:
    """Size of the keygen memo (see ``_KEYGEN_CACHE``); benchmarks report
    it to show how much keygen a template-cloned fleet amortized."""
    return {"entries": len(_KEYGEN_CACHE), "max": _KEYGEN_CACHE_MAX}


def generate_rsa_keypair(bits: int, rng: DeterministicRNG) -> RSAKeyPair:
    """Generate an RSA keypair with a modulus of exactly ``bits`` bits."""
    if bits < 64 or bits % 2:
        raise ReproError("modulus size must be an even number of bits >= 64")
    getstate = getattr(rng, "getstate", None)
    cache_key = (bits, getstate()) if getstate is not None else None
    if cache_key is not None and cache_key in _KEYGEN_CACHE:
        keypair, state_after = _KEYGEN_CACHE[cache_key]
        rng.setstate(state_after)
        return keypair
    keypair = _generate_rsa_keypair(bits, rng)
    if cache_key is not None:
        if len(_KEYGEN_CACHE) >= _KEYGEN_CACHE_MAX:
            _KEYGEN_CACHE.clear()
        _KEYGEN_CACHE[cache_key] = (keypair, rng.getstate())
    return keypair


def _generate_rsa_keypair(bits: int, rng: DeterministicRNG) -> RSAKeyPair:
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if gcd(_PUBLIC_EXPONENT, phi) != 1:
            continue
        d = mod_inverse(_PUBLIC_EXPONENT, phi)
        private = RSAPrivateKey(n=n, e=_PUBLIC_EXPONENT, d=d, p=p, q=q)
        return RSAKeyPair(private=private, public=private.public_key())
