"""AES-128 (FIPS 197), implemented from the specification.

The paper's PAL crypto library includes AES for fast symmetric protection of
data that is too large to push through the TPM's (slow) asymmetric sealed
storage: the common pattern (paper §2.2) seals a symmetric key and encrypts
the bulk data with it on the main CPU.  This module provides the block
cipher plus CBC mode with PKCS#7 padding, which is what
:mod:`repro.core.sealed_storage` uses for bulk payloads.
"""

from __future__ import annotations

from typing import List

from repro.errors import ReproError


def _build_sbox() -> tuple:
    """Compute the AES S-box from first principles (multiplicative inverse
    in GF(2^8) followed by the affine transform)."""
    # Log/antilog tables over GF(2^8) with generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 in GF(2^8)
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        s = inv
        for _ in range(4):
            s = ((s << 1) | (s >> 7)) & 0xFF
            inv ^= s
        sbox[value] = inv ^ 0x63
    inv_sbox = [0] * 256
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return tuple(sbox), tuple(inv_sbox), tuple(exp), tuple(log)


_SBOX, _INV_SBOX, _EXP, _LOG = _build_sbox()


def _gmul(a: int, b: int) -> int:
    """Multiply in GF(2^8)."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


class AES128:
    """AES with a 128-bit key: block operations plus CBC mode."""

    block_size = 16
    rounds = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ReproError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
        rcon = 1
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= rcon
                rcon = _gmul(rcon, 2)
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        # Group into 11 round keys of 16 bytes (column-major state order).
        return [sum(words[4 * r : 4 * r + 4], []) for r in range(11)]

    # -- block primitives ----------------------------------------------------

    @staticmethod
    def _add_round_key(state: List[int], rk: List[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int], box: tuple) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        # State is column-major: byte (row r, col c) is state[4*c + r].
        out = [0] * 16
        for c in range(4):
            for r in range(4):
                out[4 * c + r] = state[4 * ((c + r) % 4) + r]
        return out

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        out = [0] * 16
        for c in range(4):
            for r in range(4):
                out[4 * ((c + r) % 4) + r] = state[4 * c + r]
        return out

    @staticmethod
    def _mix_columns(state: List[int], inverse: bool) -> List[int]:
        coeffs = (14, 11, 13, 9) if inverse else (2, 3, 1, 1)
        out = [0] * 16
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            for r in range(4):
                out[4 * c + r] = (
                    _gmul(coeffs[0], col[r])
                    ^ _gmul(coeffs[1], col[(r + 1) % 4])
                    ^ _gmul(coeffs[2], col[(r + 2) % 4])
                    ^ _gmul(coeffs[3], col[(r + 3) % 4])
                )
        return out

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(plaintext) != 16:
            raise ReproError("AES block must be 16 bytes")
        state = list(plaintext)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, 10):
            self._sub_bytes(state, _SBOX)
            state = self._shift_rows(state)
            state = self._mix_columns(state, inverse=False)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state, _SBOX)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[10])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(ciphertext) != 16:
            raise ReproError("AES block must be 16 bytes")
        state = list(ciphertext)
        self._add_round_key(state, self._round_keys[10])
        for rnd in range(9, 0, -1):
            state = self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[rnd])
            state = self._mix_columns(state, inverse=True)
        state = self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    # -- CBC mode ------------------------------------------------------------

    def encrypt_cbc(self, plaintext: bytes, iv: bytes) -> bytes:
        """CBC-encrypt ``plaintext`` (PKCS#7 padded) under ``iv``."""
        if len(iv) != 16:
            raise ReproError("IV must be 16 bytes")
        pad = 16 - (len(plaintext) % 16)
        padded = plaintext + bytes([pad]) * pad
        out = bytearray()
        prev = iv
        for i in range(0, len(padded), 16):
            block = bytes(a ^ b for a, b in zip(padded[i : i + 16], prev))
            prev = self.encrypt_block(block)
            out += prev
        return bytes(out)

    def decrypt_cbc(self, ciphertext: bytes, iv: bytes) -> bytes:
        """CBC-decrypt and strip PKCS#7 padding; raises on bad padding."""
        if len(iv) != 16:
            raise ReproError("IV must be 16 bytes")
        if len(ciphertext) == 0 or len(ciphertext) % 16 != 0:
            raise ReproError("ciphertext length must be a positive multiple of 16")
        out = bytearray()
        prev = iv
        for i in range(0, len(ciphertext), 16):
            block = ciphertext[i : i + 16]
            plain = self.decrypt_block(block)
            out += bytes(a ^ b for a, b in zip(plain, prev))
            prev = block
        pad = out[-1]
        if pad < 1 or pad > 16 or out[-pad:] != bytes([pad]) * pad:
            raise ReproError("bad PKCS#7 padding")
        return bytes(out[:-pad])
