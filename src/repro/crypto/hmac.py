"""HMAC (RFC 2104) over our own hash implementations.

The distributed-computing application (paper §6.2) MACs its
integrity-protected state with HMAC keyed by a TPM-sealed symmetric key;
this module supplies HMAC-SHA1 (the paper's 160-bit key matches SHA-1's
output size) and HMAC-MD5.
"""

from __future__ import annotations

from typing import Callable

from repro.crypto.md5 import md5
from repro.crypto.sha1 import sha1


def _hmac(hash_fn: Callable[[bytes], bytes], block_size: int, key: bytes, message: bytes) -> bytes:
    if len(key) > block_size:
        key = hash_fn(key)
    key = key.ljust(block_size, b"\x00")
    o_key_pad = bytes(b ^ 0x5C for b in key)
    i_key_pad = bytes(b ^ 0x36 for b in key)
    return hash_fn(o_key_pad + hash_fn(i_key_pad + message))


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA1 of ``message`` under ``key`` (20-byte tag)."""
    return _hmac(sha1, 64, key, message)


def hmac_md5(key: bytes, message: bytes) -> bytes:
    """HMAC-MD5 of ``message`` under ``key`` (16-byte tag)."""
    return _hmac(md5, 64, key, message)


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit.

    Real PAL code must compare MACs in constant time to avoid timing
    side channels; the simulation preserves the idiom.
    """
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
