"""SHA-512 (FIPS 180-2), implemented from the specification.

Included because the paper's PAL crypto library ships SHA-512 alongside
SHA-1; the reproduction uses it inside the deterministic DRBG
(:mod:`repro.crypto.drbg`) and offers it to PAL authors.
"""

from __future__ import annotations

import struct

_K = [
    0x428A2F98D728AE22, 0x7137449123EF65CD, 0xB5C0FBCFEC4D3B2F, 0xE9B5DBA58189DBBC,
    0x3956C25BF348B538, 0x59F111F1B605D019, 0x923F82A4AF194F9B, 0xAB1C5ED5DA6D8118,
    0xD807AA98A3030242, 0x12835B0145706FBE, 0x243185BE4EE4B28C, 0x550C7DC3D5FFB4E2,
    0x72BE5D74F27B896F, 0x80DEB1FE3B1696B1, 0x9BDC06A725C71235, 0xC19BF174CF692694,
    0xE49B69C19EF14AD2, 0xEFBE4786384F25E3, 0x0FC19DC68B8CD5B5, 0x240CA1CC77AC9C65,
    0x2DE92C6F592B0275, 0x4A7484AA6EA6E483, 0x5CB0A9DCBD41FBD4, 0x76F988DA831153B5,
    0x983E5152EE66DFAB, 0xA831C66D2DB43210, 0xB00327C898FB213F, 0xBF597FC7BEEF0EE4,
    0xC6E00BF33DA88FC2, 0xD5A79147930AA725, 0x06CA6351E003826F, 0x142929670A0E6E70,
    0x27B70A8546D22FFC, 0x2E1B21385C26C926, 0x4D2C6DFC5AC42AED, 0x53380D139D95B3DF,
    0x650A73548BAF63DE, 0x766A0ABB3C77B2A8, 0x81C2C92E47EDAEE6, 0x92722C851482353B,
    0xA2BFE8A14CF10364, 0xA81A664BBC423001, 0xC24B8B70D0F89791, 0xC76C51A30654BE30,
    0xD192E819D6EF5218, 0xD69906245565A910, 0xF40E35855771202A, 0x106AA07032BBD1B8,
    0x19A4C116B8D2D0C8, 0x1E376C085141AB53, 0x2748774CDF8EEB99, 0x34B0BCB5E19B48A8,
    0x391C0CB3C5C95A63, 0x4ED8AA4AE3418ACB, 0x5B9CCA4F7763E373, 0x682E6FF3D6B2B8A3,
    0x748F82EE5DEFB2FC, 0x78A5636F43172F60, 0x84C87814A1F0AB72, 0x8CC702081A6439EC,
    0x90BEFFFA23631E28, 0xA4506CEBDE82BDE9, 0xBEF9A3F7B2C67915, 0xC67178F2E372532B,
    0xCA273ECEEA26619C, 0xD186B8C721C0C207, 0xEADA7DD6CDE0EB1E, 0xF57D4F7FEE6ED178,
    0x06F067AA72176FBA, 0x0A637DC5A2C898A6, 0x113F9804BEF90DAE, 0x1B710B35131C471B,
    0x28DB77F523047D84, 0x32CAAB7B40C72493, 0x3C9EBE0A15C9BEBC, 0x431D67C49C100D4C,
    0x4CC5D4BECB3E42B6, 0x597F299CFC657E2A, 0x5FCB6FAB3AD6FAEC, 0x6C44198C4A475817,
]

_H0 = (
    0x6A09E667F3BCC908, 0xBB67AE8584CAA73B, 0x3C6EF372FE94F82B, 0xA54FF53A5F1D36F1,
    0x510E527FADE682D1, 0x9B05688C2B3E6C1F, 0x1F83D9ABFB41BD6B, 0x5BE0CD19137E2179,
)

_MASK64 = (1 << 64) - 1


def _rotr(value: int, amount: int) -> int:
    return ((value >> amount) | (value << (64 - amount))) & _MASK64


class SHA512:
    """Incremental SHA-512."""

    digest_size = 64
    block_size = 128

    def __init__(self, data: bytes = b"") -> None:
        self._h = list(_H0)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "SHA512":
        """Absorb ``data``; returns self for chaining."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 128:
            self._compress(self._buffer[:128])
            self._buffer = self._buffer[128:]
        return self

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16Q", block))
        for t in range(16, 80):
            s0 = _rotr(w[t - 15], 1) ^ _rotr(w[t - 15], 8) ^ (w[t - 15] >> 7)
            s1 = _rotr(w[t - 2], 19) ^ _rotr(w[t - 2], 61) ^ (w[t - 2] >> 6)
            w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK64)
        a, b, c, d, e, f, g, h = self._h
        for t in range(80):
            big_s1 = _rotr(e, 14) ^ _rotr(e, 18) ^ _rotr(e, 41)
            ch = (e & f) ^ ((~e) & g)
            t1 = (h + big_s1 + ch + _K[t] + w[t]) & _MASK64
            big_s0 = _rotr(a, 28) ^ _rotr(a, 34) ^ _rotr(a, 39)
            maj = (a & b) ^ (a & c) ^ (b & c)
            t2 = (big_s0 + maj) & _MASK64
            h, g, f, e, d, c, b, a = g, f, e, (d + t1) & _MASK64, c, b, a, (t1 + t2) & _MASK64
        self._h = [(x + y) & _MASK64 for x, y in zip(self._h, (a, b, c, d, e, f, g, h))]

    def digest(self) -> bytes:
        """Return the 64-byte digest without disturbing internal state."""
        clone = self.copy()
        pad_len = (111 - clone._length) % 128
        padding = b"\x80" + b"\x00" * pad_len + struct.pack(">QQ", 0, clone._length * 8)
        clone._length += len(padding)
        clone._buffer += padding
        while len(clone._buffer) >= 128:
            clone._compress(clone._buffer[:128])
            clone._buffer = clone._buffer[128:]
        return struct.pack(">8Q", *clone._h)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "SHA512":
        """Return an independent copy of the running hash state."""
        clone = SHA512()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha512(data: bytes) -> bytes:
    """One-shot SHA-512 digest of ``data``."""
    return SHA512(data).digest()
