"""Loadable kernel module framework.

The flicker-module is "a Linux kernel module we have developed" (paper
§4.1); loading it registers its sysfs entries and adds its text to the
kernel's loaded-module list — which means it is *measured* by the rootkit
detector like any other module, and a tampered flicker-module is
detectable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ModuleLoadError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.osim.kernel import UntrustedKernel


class KernelModule:
    """Base class for loadable kernel modules.

    Subclasses override :meth:`on_load` / :meth:`on_unload` and provide
    ``name`` and ``text`` (the module's code bytes, which become part of
    the kernel's measured state).
    """

    #: Module name as it appears in the loaded-module list.
    name: str = "module"

    #: The module's text bytes (measured by integrity checks).
    text: bytes = b""

    def __init__(self) -> None:
        self.kernel: "UntrustedKernel" = None  # set on load
        self.text_addr: int = 0

    def on_load(self, kernel: "UntrustedKernel") -> None:
        """Module initialisation hook; runs with the module already mapped."""

    def on_unload(self) -> None:
        """Module teardown hook."""

    def loaded(self) -> bool:
        """Whether this instance is currently loaded into a kernel."""
        return self.kernel is not None


def load_module(kernel: "UntrustedKernel", module: KernelModule) -> None:
    """Map a module's text into kernel memory and run its init."""
    if module.loaded():
        raise ModuleLoadError(f"module {module.name!r} is already loaded")
    if not module.text:
        raise ModuleLoadError(f"module {module.name!r} has no text")
    module.text_addr = kernel.kalloc(len(module.text))
    kernel.machine.memory.write(module.text_addr, module.text)
    kernel.register_module(module)
    module.kernel = kernel
    module.on_load(kernel)


def unload_module(module: KernelModule) -> None:
    """Run a module's teardown and remove it from the kernel."""
    if not module.loaded():
        raise ModuleLoadError(f"module {module.name!r} is not loaded")
    module.on_unload()
    module.kernel.unregister_module(module)
    module.kernel = None
