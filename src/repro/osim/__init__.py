"""Simulated untrusted operating system (a Linux 2.6.20 stand-in).

Flicker's host OS is untrusted but cooperative: it loads the
flicker-module, allocates SLB memory, deschedules the application
processors, and stores sealed blobs.  The simulation gives the OS exactly
the surface the paper uses:

* :mod:`repro.osim.kernel` — kernel text / syscall table / loaded modules
  laid out in simulated physical memory (what the rootkit detector hashes),
  page tables, a scheduler with CPU-hotplug AP descheduling, and a kernel
  memory allocator.
* :mod:`repro.osim.sysfs` — the virtual filesystem through which
  applications talk to the flicker-module.
* :mod:`repro.osim.modules` — loadable kernel module framework.
* :mod:`repro.osim.tpm_driver` — the OS-side TPM driver and the TPM Quote
  Daemon (``tqd``) built on it (the TrouSerS-stack analogue from §6).
* :mod:`repro.osim.storage` / :mod:`repro.osim.network` — block devices
  with DMA transfers, and the network path to remote parties.
* :mod:`repro.osim.attacker` — the adversary: rootkits, DMA probes,
  debugger probes, sealed-blob replay.
"""

from repro.osim.kernel import UntrustedKernel, Process, PageTables
from repro.osim.sysfs import Sysfs, SysfsEntry
from repro.osim.modules import KernelModule
from repro.osim.tpm_driver import OSTPMDriver, TPMQuoteDaemon
from repro.osim.storage import BlockDevice, FileStore
from repro.osim.network import NetworkLink, RemoteHost
from repro.osim.attacker import Attacker

__all__ = [
    "UntrustedKernel",
    "Process",
    "PageTables",
    "Sysfs",
    "SysfsEntry",
    "KernelModule",
    "OSTPMDriver",
    "TPMQuoteDaemon",
    "BlockDevice",
    "FileStore",
    "NetworkLink",
    "RemoteHost",
    "Attacker",
]
