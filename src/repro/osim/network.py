"""Network path between the Flicker platform and remote parties.

The paper's remote verifier sits 12 hops away with an average ping of
9.45 ms (§7.1).  The simulation models the path as a fixed one-way latency
charged to the virtual clock per message; payload serialization is by
plain Python objects (the protocols under test are application-level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Tuple

from repro.sim.clock import VirtualClock
from repro.sim.trace import EventTrace


@dataclass
class RemoteHost:
    """A named endpoint on the far side of a link (e.g. the admin's
    workstation, or the SSH client)."""

    name: str


class NetworkLink:
    """A bidirectional link with symmetric one-way latency."""

    def __init__(
        self,
        clock: VirtualClock,
        trace: EventTrace,
        one_way_ms: float,
        hops: int = 12,
    ) -> None:
        self.clock = clock
        self.trace = trace
        self.one_way_ms = one_way_ms
        self.hops = hops
        self._log: List[Tuple[str, str, Any]] = []

    def send(self, sender: str, receiver: str, payload: Any) -> Any:
        """Deliver ``payload`` from ``sender`` to ``receiver``, charging
        one-way latency.  Returns the payload (now 'at' the receiver)."""
        self.clock.advance(self.one_way_ms)
        self.trace.emit(self.clock.now(), "net", "message",
                        sender=sender, receiver=receiver,
                        payload_type=type(payload).__name__)
        self._log.append((sender, receiver, payload))
        return payload

    def round_trip(self, requester: str, responder: str, request: Any,
                   handler: Callable[[Any], Any]) -> Any:
        """One request/response exchange: charges two one-way latencies and
        runs ``handler`` at the responder in between."""
        delivered = self.send(requester, responder, request)
        response = handler(delivered)
        return self.send(responder, requester, response)

    def message_log(self) -> List[Tuple[str, str, Any]]:
        """All messages carried by this link (for tests that play a
        network eavesdropper — e.g. checking no cleartext password ever
        crosses the wire)."""
        return list(self._log)
