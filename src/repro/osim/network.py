"""Network path between the Flicker platform and remote parties.

The paper's remote verifier sits 12 hops away with an average ping of
9.45 ms (§7.1).  The simulation models the path as a fixed one-way latency
per message; payload serialization is by plain Python objects (the
protocols under test are application-level).

Two delivery modes coexist:

* :meth:`NetworkLink.send` — the legacy synchronous mode: latency is
  charged to the sender's clock and the payload is returned "at" the
  receiver.  Single-machine deployments (one clock, one timeline) keep
  using this path unchanged, which preserves the paper-calibrated
  timings bit-for-bit.
* :meth:`NetworkLink.deliver` — the fleet mode: delivery becomes a
  scheduled event on an :class:`~repro.sim.sched.EventScheduler`.
  Latency (plus optional seeded jitter) separates send from arrival, and
  per-link delivery stays in order even when jitter would reorder it.

The carried-message log is bounded (``max_log``) so long fleet runs don't
grow memory without limit; eavesdropper-style tests read it through the
public :meth:`messages` accessor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRNG
from repro.sim.trace import EventTrace

#: Default bound on the per-link message log.
DEFAULT_MAX_LOG = 4096


@dataclass
class RemoteHost:
    """A named endpoint on the far side of a link (e.g. the admin's
    workstation, or the SSH client)."""

    name: str


def payload_nbytes(payload: Any) -> int:
    """Approximate wire size of a payload, for throughput accounting.

    ``bytes``/``str`` count exactly; objects exposing ``encode()`` (the
    protocol structures in this repository) count their encoding; anything
    else counts its ``repr`` — a stable, deterministic stand-in.
    """
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    encode = getattr(payload, "encode", None)
    if callable(encode):
        try:
            encoded = encode()
            if isinstance(encoded, (bytes, bytearray)):
                return len(encoded)
        except TypeError:
            pass
    nbytes = getattr(payload, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    return len(repr(payload))


class NetworkLink:
    """A bidirectional link with symmetric one-way latency."""

    def __init__(
        self,
        clock: VirtualClock,
        trace: EventTrace,
        one_way_ms: float,
        hops: int = 12,
        scheduler=None,
        jitter_ms: float = 0.0,
        rng: Optional[DeterministicRNG] = None,
        max_log: Optional[int] = DEFAULT_MAX_LOG,
        name: str = "link",
    ) -> None:
        self.clock = clock
        self.trace = trace
        self.one_way_ms = one_way_ms
        self.hops = hops
        self.scheduler = scheduler
        self.jitter_ms = jitter_ms
        self.rng = rng
        self.name = name
        self.max_log = max_log
        self._messages: Deque[Tuple[str, str, Any]] = deque(maxlen=max_log)
        #: Messages evicted from the bounded log (carried, then forgotten).
        self.messages_dropped = 0
        #: Total messages / payload bytes carried, never truncated.
        self.messages_carried = 0
        self.bytes_carried = 0
        #: Latest delivery time scheduled on this link (in-order floor).
        self._last_delivery_ms = 0.0

    # -- shared bookkeeping ----------------------------------------------------

    def _latency_ms(self) -> float:
        """One-way latency for the next message (jitter is seeded)."""
        latency = self.one_way_ms
        if self.jitter_ms > 0.0 and self.rng is not None:
            latency += abs(self.rng.gauss(0.0, self.jitter_ms))
        return latency

    def _record(self, time_ms: float, sender: str, receiver: str,
                payload: Any) -> None:
        self.trace.emit(time_ms, "net", "message",
                        sender=sender, receiver=receiver,
                        payload_type=type(payload).__name__)
        if self.max_log is not None and len(self._messages) == self.max_log:
            self.messages_dropped += 1
        self._messages.append((sender, receiver, payload))
        self.messages_carried += 1
        self.bytes_carried += payload_nbytes(payload)

    # -- synchronous (single-timeline) mode -------------------------------------

    def send(self, sender: str, receiver: str, payload: Any) -> Any:
        """Deliver ``payload`` from ``sender`` to ``receiver``, charging
        one-way latency.  Returns the payload (now 'at' the receiver)."""
        self.clock.advance(self.one_way_ms)
        self._record(self.clock.now(), sender, receiver, payload)
        return payload

    def round_trip(self, requester: str, responder: str, request: Any,
                   handler: Callable[[Any], Any]) -> Any:
        """One request/response exchange: charges two one-way latencies and
        runs ``handler`` at the responder in between."""
        delivered = self.send(requester, responder, request)
        response = handler(delivered)
        return self.send(responder, requester, response)

    # -- scheduled (fleet) mode --------------------------------------------------

    def deliver(self, sender: str, receiver: str, payload: Any,
                handler: Callable[[Any], Any],
                now_ms: Optional[float] = None):
        """Schedule delivery of ``payload``; returns the delivery event.

        The message leaves at ``now_ms`` (default: this link's clock,
        i.e. the *sender's* local time) and arrives one latency later.
        ``handler(payload)`` runs at arrival — typically a
        :meth:`~repro.sim.sched.Mailbox.put`.  Deliveries on one link
        never reorder: each arrival is clamped to be no earlier than the
        previously scheduled one.
        """
        if self.scheduler is None:
            raise RuntimeError(
                f"link {self.name!r} has no scheduler; use send() or build "
                f"the link with scheduler="
            )
        departed = self.clock.now() if now_ms is None else now_ms
        arrival = max(departed + self._latency_ms(),
                      self._last_delivery_ms, self.scheduler.now())
        self._last_delivery_ms = arrival

        def _arrive() -> None:
            self._record(arrival, sender, receiver, payload)
            handler(payload)

        return self.scheduler.at(
            arrival, _arrive, label=f"{self.name}:{sender}->{receiver}"
        )

    # -- the message log ---------------------------------------------------------

    def messages(self) -> List[Tuple[str, str, Any]]:
        """The retained ``(sender, receiver, payload)`` records, oldest
        first (at most ``max_log``; see :attr:`messages_dropped`).

        This is the accessor for tests that play a network eavesdropper —
        e.g. checking no cleartext password ever crosses the wire.
        """
        return list(self._messages)

    def message_log(self) -> List[Tuple[str, str, Any]]:
        """Deprecated alias of :meth:`messages` (kept for callers of the
        pre-fleet API)."""
        return self.messages()
