"""OS-side TPM driver and the TPM Quote Daemon (tqd).

The paper runs a "TPM Quote Daemon (the tqd) on top of the TrouSerS TCG
Software Stack … on the untrusted OS" to provide an attestation service
(§6).  The quote itself is trustworthy even though the OS is not: the TPM
signs the PCR values with the AIK, and the verifier checks that signature
(§4.4.1) — the OS merely transports bytes.

:class:`OSTPMDriver` wraps the raw locality-0 TPM interface with the
session/HMAC plumbing (the TrouSerS role); :class:`TPMQuoteDaemon` provides
the quote-on-request service.
"""

from __future__ import annotations

from typing import Iterable

from repro.osim.kernel import UntrustedKernel
from repro.tpm.driver import TPMSessionDriver
from repro.tpm.privacy_ca import AIKCertificate, PrivacyCA
from repro.tpm.structures import Quote
from repro.tpm.tpm import command_digest


class OSTPMDriver(TPMSessionDriver):
    """The untrusted OS's TPM driver: the shared session plumbing of
    :class:`~repro.tpm.driver.TPMSessionDriver` plus TPM_Quote.

    Quote lives here rather than on the shared base because only the
    OS-side attestation service (the tqd) ever quotes — PALs attest via
    the session record the SLB Core extends, and keeping AIK handling
    out of :mod:`repro.core.modules.tpm_utils` keeps it out of every
    PAL's TCB.
    """

    def quote(self, nonce: bytes, pcr_indices: Iterable[int]) -> Quote:
        """TPM_Quote with AIK usage auth handled internally."""
        indices = tuple(sorted(set(pcr_indices)))
        session = self._tpm.start_oiap()
        nonce_odd = self._nonce_odd()
        digest = command_digest("TPM_Quote", nonce, bytes(indices))
        proof = session.compute_proof(self._tpm.aik_auth, digest, nonce_odd)
        return self._tpm.quote(nonce, indices, session, nonce_odd, proof)


class TPMQuoteDaemon:
    """The tqd: an attestation service running on the untrusted OS.

    Holds the platform's AIK certificate (obtained from a Privacy CA) and
    answers challenges by quoting the requested PCRs.
    """

    def __init__(self, kernel: UntrustedKernel, privacy_ca: PrivacyCA,
                 platform_label: str = "hp-dc5750") -> None:
        self.kernel = kernel
        self.driver = OSTPMDriver(
            kernel.machine.os_tpm_interface(), nonce_seed=b"tqd"
        )
        self._privacy_ca = privacy_ca
        self._platform_label = platform_label
        self._aik_certificate: AIKCertificate = None

    @property
    def aik_certificate(self) -> AIKCertificate:
        """The platform's AIK certificate.

        Enrolment — EK registration with the Privacy CA and AIK
        certification, both of which force the expensive TPM key
        generations — runs on first use, so constructing a daemon on a
        machine that never attests costs nothing.  The keys themselves
        come from RNG streams forked at TPM construction time, so the
        certificate is byte-identical whenever enrolment happens.
        """
        if self._aik_certificate is None:
            tpm = self.kernel.machine.tpm
            self._privacy_ca.register_ek(tpm.ek_public)
            self._aik_certificate = self._privacy_ca.issue(
                tpm.aik_public, tpm.ek_public, self._platform_label
            )
        return self._aik_certificate

    def attest(self, nonce: bytes, pcr_indices: Iterable[int]) -> tuple:
        """Answer a challenge: returns (quote, aik_certificate)."""
        quote = self.driver.quote(nonce, pcr_indices)
        return quote, self.aik_certificate
