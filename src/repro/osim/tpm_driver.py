"""OS-side TPM driver and the TPM Quote Daemon (tqd).

The paper runs a "TPM Quote Daemon (the tqd) on top of the TrouSerS TCG
Software Stack … on the untrusted OS" to provide an attestation service
(§6).  The quote itself is trustworthy even though the OS is not: the TPM
signs the PCR values with the AIK, and the verifier checks that signature
(§4.4.1) — the OS merely transports bytes.

:class:`OSTPMDriver` wraps the raw locality-0 TPM interface with the
session/HMAC plumbing (the TrouSerS role); :class:`TPMQuoteDaemon` provides
the quote-on-request service.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.crypto.sha1 import sha1
from repro.osim.kernel import UntrustedKernel
from repro.tpm.privacy_ca import AIKCertificate, PrivacyCA
from repro.tpm.structures import Quote, SealedBlob
from repro.tpm.tpm import TPMInterface, command_digest
from repro.tpm.structures import PCRComposite


class OSTPMDriver:
    """Convenience layer over the TPM's authorized command set.

    Handles OIAP session setup, odd-nonce generation, and proof
    computation so that callers — the tqd, the flicker-module, and PALs'
    TPM-utilities module alike — can issue one-line Seal/Unseal/Quote
    calls.  This mirrors the split in the paper between the tiny "TPM
    Driver" and the richer "TPM Utilities" (Figure 6).
    """

    def __init__(self, interface: TPMInterface, nonce_seed: bytes = b"os-driver") -> None:
        self._tpm = interface
        self._nonce_counter = 0
        self._nonce_seed = nonce_seed

    @property
    def interface(self) -> TPMInterface:
        """The underlying locality-bound TPM interface."""
        return self._tpm

    def _nonce_odd(self) -> bytes:
        self._nonce_counter += 1
        return sha1(self._nonce_seed + self._nonce_counter.to_bytes(8, "big"))

    # -- authorized commands ----------------------------------------------------

    def quote(self, nonce: bytes, pcr_indices: Iterable[int]) -> Quote:
        """TPM_Quote with AIK usage auth handled internally."""
        indices = tuple(sorted(set(pcr_indices)))
        session = self._tpm.start_oiap()
        nonce_odd = self._nonce_odd()
        digest = command_digest("TPM_Quote", nonce, bytes(indices))
        proof = session.compute_proof(self._tpm.aik_auth, digest, nonce_odd)
        return self._tpm.quote(nonce, indices, session, nonce_odd, proof)

    def seal(self, data: bytes, pcr_policy: Dict[int, bytes]) -> SealedBlob:
        """TPM_Seal with SRK auth handled internally."""
        session = self._tpm.start_oiap()
        nonce_odd = self._nonce_odd()
        policy_blob = PCRComposite.from_mapping(pcr_policy).encode() if pcr_policy else b""
        digest = command_digest("TPM_Seal", data, policy_blob)
        proof = session.compute_proof(self._tpm.srk_auth, digest, nonce_odd)
        return self._tpm.seal(data, pcr_policy, session, nonce_odd, proof)

    def unseal(self, blob: SealedBlob) -> bytes:
        """TPM_Unseal with SRK auth handled internally.  PCR policy is
        still enforced by the TPM — auth alone releases nothing."""
        session = self._tpm.start_oiap()
        nonce_odd = self._nonce_odd()
        digest = command_digest("TPM_Unseal", blob.ciphertext)
        proof = session.compute_proof(self._tpm.srk_auth, digest, nonce_odd)
        return self._tpm.unseal(blob, session, nonce_odd, proof)

    def define_nv_space(
        self,
        index: int,
        size: int,
        owner_auth: bytes,
        read_pcr_policy: Optional[Dict[int, bytes]] = None,
        write_pcr_policy: Optional[Dict[int, bytes]] = None,
    ):
        """TPM_NV_DefineSpace using the given owner authorization."""
        session = self._tpm.start_oiap()
        nonce_odd = self._nonce_odd()
        digest = command_digest(
            "TPM_NV_DefineSpace", index.to_bytes(4, "big"), size.to_bytes(4, "big")
        )
        proof = session.compute_proof(owner_auth, digest, nonce_odd)
        return self._tpm.nv_define_space(
            index, size, read_pcr_policy, write_pcr_policy, session, nonce_odd, proof
        )

    def create_counter(self, label: bytes, owner_auth: bytes) -> int:
        """Create a monotonic counter using owner authorization."""
        session = self._tpm.start_oiap()
        nonce_odd = self._nonce_odd()
        digest = command_digest("TPM_CreateCounter", label)
        proof = session.compute_proof(owner_auth, digest, nonce_odd)
        return self._tpm.create_counter(label, session, nonce_odd, proof)

    # -- unauthorized commands ------------------------------------------------------

    def pcr_read(self, index: int) -> bytes:
        """TPM_PCRRead."""
        return self._tpm.pcr_read(index)

    def pcr_extend(self, index: int, measurement: bytes) -> bytes:
        """TPM_Extend."""
        return self._tpm.pcr_extend(index, measurement)

    def get_random(self, num_bytes: int) -> bytes:
        """TPM_GetRandom."""
        return self._tpm.get_random(num_bytes)

    def nv_read(self, index: int) -> bytes:
        """TPM_NV_ReadValue."""
        return self._tpm.nv_read(index)

    def nv_write(self, index: int, data: bytes) -> None:
        """TPM_NV_WriteValue."""
        self._tpm.nv_write(index, data)

    def increment_counter(self, counter_id: int) -> int:
        """TPM_IncrementCounter."""
        return self._tpm.increment_counter(counter_id)

    def read_counter(self, counter_id: int) -> int:
        """TPM_ReadCounter."""
        return self._tpm.read_counter(counter_id)


class TPMQuoteDaemon:
    """The tqd: an attestation service running on the untrusted OS.

    Holds the platform's AIK certificate (obtained from a Privacy CA) and
    answers challenges by quoting the requested PCRs.
    """

    def __init__(self, kernel: UntrustedKernel, privacy_ca: PrivacyCA,
                 platform_label: str = "hp-dc5750") -> None:
        self.kernel = kernel
        machine = kernel.machine
        self.driver = OSTPMDriver(machine.os_tpm_interface(), nonce_seed=b"tqd")
        privacy_ca.register_ek(machine.tpm.ek_public)
        self.aik_certificate: AIKCertificate = privacy_ca.issue(
            machine.tpm.aik_public, machine.tpm.ek_public, platform_label
        )

    def attest(self, nonce: bytes, pcr_indices: Iterable[int]) -> tuple:
        """Answer a challenge: returns (quote, aik_certificate)."""
        quote = self.driver.quote(nonce, pcr_indices)
        return quote, self.aik_certificate
