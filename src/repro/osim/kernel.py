"""The untrusted kernel: measured state, scheduler, page tables, allocator.

The kernel is *functional enough* to support everything Flicker needs from
it (paper §4.2) and everything the rootkit detector measures (paper §6.1):

* **Measured state.**  Kernel text, the system-call table, and the text of
  every loaded module live at fixed physical addresses.  The rootkit
  detector PAL hashes exactly these regions; an attacker who patches any
  of them changes the hash.
* **Scheduler & CPU hotplug.**  Processes are bound to cores; SKINIT's
  multi-core handshake requires the flicker-module to deschedule all
  Application Processors (Linux CPU-hotplug, kernels ≥ 2.6.19) before
  sending INIT IPIs.
* **Page tables.**  The kernel runs with paging enabled; the
  flicker-module saves the page-table root before SKINIT and the SLB Core
  restores it when resuming the OS.
* **Kernel memory allocator.**  A bump allocator hands out page-aligned
  kernel memory — the flicker-module uses it for the SLB region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import KernelPanic, MemoryFault
from repro.hw.machine import Machine
from repro.hw.memory import PAGE_SIZE
from repro.osim.modules import KernelModule, load_module, unload_module
from repro.osim.sysfs import Sysfs

#: Physical base of the kernel's text segment.
KERNEL_TEXT_BASE = 0x0100_0000

#: Actual size of the simulated kernel text (functional bytes that get
#: hashed and can be attacked).  The *modelled* size used for timing is
#: larger — see ``measured_size_kb``.
KERNEL_TEXT_BYTES = 64 * 1024

#: Number of system-call table entries (Linux 2.6.20 order of magnitude).
SYSCALL_COUNT = 320

#: Physical base of the syscall table (just above kernel text).
SYSCALL_TABLE_BASE = KERNEL_TEXT_BASE + KERNEL_TEXT_BYTES

#: Base of the kernel heap used by the bump allocator.
KERNEL_HEAP_BASE = 0x0200_0000

#: End of the kernel heap.
KERNEL_HEAP_END = 0x0400_0000

#: Paper Table 1 reports 22.0 ms to hash the kernel text, syscall table and
#: loaded modules on the test machine.  With the host profile's SHA-1
#: throughput that corresponds to ~2820 KB of measured state; the simulated
#: kernel carries this as its *modelled* measurement size so the timing
#: reproduces the paper even though the functional image is smaller.
KERNEL_MEASURED_SIZE_KB = 2820.0


@dataclass
class Process:
    """A schedulable process."""

    pid: int
    name: str
    core_id: Optional[int] = None  # core currently executing it, if any


@dataclass
class PageTables:
    """A page-table hierarchy, identified by its root (CR3) address.

    The mapping is symbolic — virtual page → physical page — because the
    simulation never actually walks page tables; what matters is that the
    SLB Core can rebuild a *skeleton* unity mapping and then restore the
    kernel's own CR3 (paper §4.2, "Resume OS").
    """

    root: int
    mapping: Dict[int, int] = field(default_factory=dict)

    def map_unity(self, addr: int, length: int) -> None:
        """Add a unity (virtual == physical) mapping over a range."""
        pages = range(addr // PAGE_SIZE, (addr + length - 1) // PAGE_SIZE + 1)
        self.mapping.update(zip(pages, pages))


#: Memoized kernel images keyed by (rng state, text size): kernel text and
#: the syscall table are pure functions of the ``kernel-text`` RNG stream,
#: so rebuilding a machine with the same seed — every fleet sweep row,
#: replay, and template clone — reuses the bytes instead of regenerating
#: 64 KB of deterministic noise.
_KERNEL_IMAGE_CACHE: Dict[Tuple[int, int], Tuple[bytes, bytes]] = {}
_KERNEL_IMAGE_CACHE_MAX = 256

#: One shared unity mapping per memory size: the kernel's direct map is
#: seed-independent, so every machine starts from a copy of the same dict.
_UNITY_MAP_CACHE: Dict[int, Dict[int, int]] = {}


class UntrustedKernel:
    """The simulated (untrusted) operating system kernel."""

    def __init__(self, machine: Machine, name: str = "linux-2.6.20") -> None:
        self.machine = machine
        self.name = name
        self.sysfs = Sysfs()
        self._heap_cursor = KERNEL_HEAP_BASE
        self._modules: List[KernelModule] = []
        self._processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._runqueue: List[int] = []  # pids waiting for a core
        self._hotplugged_aps: List[int] = []

        # Lay out deterministic kernel text and a syscall table whose
        # entries point into it.  Both are pure functions of the forked
        # RNG stream, so identical seeds reuse the memoized image.
        rng = machine.rng.fork("kernel-text")
        cache_key = (rng.getstate(), KERNEL_TEXT_BYTES)
        cached = _KERNEL_IMAGE_CACHE.get(cache_key)
        if cached is None:
            text = rng.bytes(KERNEL_TEXT_BYTES)
            table = bytearray()
            for i in range(SYSCALL_COUNT):
                handler = KERNEL_TEXT_BASE + (
                    rng.randint(0, KERNEL_TEXT_BYTES - 16) & ~0xF
                )
                table += handler.to_bytes(4, "little")
            cached = (text, bytes(table))
            if len(_KERNEL_IMAGE_CACHE) >= _KERNEL_IMAGE_CACHE_MAX:
                _KERNEL_IMAGE_CACHE.clear()
            _KERNEL_IMAGE_CACHE[cache_key] = cached
        self._pristine_text, self._pristine_syscall_table = cached
        machine.memory.write(KERNEL_TEXT_BASE, self._pristine_text)
        machine.memory.write(SYSCALL_TABLE_BASE, self._pristine_syscall_table)

        # Kernel page tables: a direct map of all physical memory (the
        # mapping is seed-independent — share one prototype per size).
        size_bytes = machine.memory.size_bytes
        unity = _UNITY_MAP_CACHE.get(size_bytes)
        if unity is None:
            prototype = PageTables(root=0)
            prototype.map_unity(0, size_bytes)
            unity = _UNITY_MAP_CACHE[size_bytes] = prototype.mapping
        self.page_tables = PageTables(root=0x0040_0000, mapping=dict(unity))
        machine.cpu.bsp.cr3 = self.page_tables.root
        for core in machine.cpu.cores:
            core.cr3 = self.page_tables.root

    # -- measured state ----------------------------------------------------------

    @property
    def syscall_table_bytes(self) -> int:
        """Size of the syscall table in bytes."""
        return SYSCALL_COUNT * 4

    def measured_regions(self) -> List[Tuple[str, int, int]]:
        """(name, physical address, length) of every region an integrity
        measurement of this kernel must cover: text, syscall table, and the
        text of each loaded module (paper §6.1)."""
        regions = [
            ("kernel-text", KERNEL_TEXT_BASE, KERNEL_TEXT_BYTES),
            ("syscall-table", SYSCALL_TABLE_BASE, self.syscall_table_bytes),
        ]
        for module in self._modules:
            regions.append((f"module:{module.name}", module.text_addr, len(module.text)))
        return regions

    def measured_size_kb(self) -> float:
        """The *modelled* size of the measured state, used for timing (see
        ``KERNEL_MEASURED_SIZE_KB``)."""
        return KERNEL_MEASURED_SIZE_KB

    def pristine_measurement_input(self) -> bytes:
        """The byte string a detector would hash on an *uncompromised*
        kernel with the current module set.  Used by verifiers to compute
        the known-good hash (paper §6.1: "the administrator can compare the
        hash value returned against known-good values for that particular
        kernel")."""
        parts = [self._pristine_text, self._pristine_syscall_table]
        for module in self._modules:
            parts.append(module.text)
        return b"".join(parts)

    # -- modules --------------------------------------------------------------------

    def load_module(self, module: KernelModule) -> None:
        """Load a kernel module (maps its text, runs init)."""
        load_module(self, module)

    def unload_module(self, module: KernelModule) -> None:
        """Unload a kernel module."""
        unload_module(module)

    def register_module(self, module: KernelModule) -> None:
        """Internal: add a mapped module to the loaded list."""
        self._modules.append(module)

    def unregister_module(self, module: KernelModule) -> None:
        """Internal: drop a module from the loaded list."""
        self._modules.remove(module)

    def loaded_modules(self) -> List[KernelModule]:
        """Currently loaded modules, in load order."""
        return list(self._modules)

    # -- kernel memory ------------------------------------------------------------------

    def kalloc(self, size: int, align: int = PAGE_SIZE) -> int:
        """Allocate page-aligned kernel memory; returns the physical base."""
        if size <= 0:
            raise MemoryFault("kalloc of non-positive size")
        cursor = (self._heap_cursor + align - 1) & ~(align - 1)
        if cursor + size > KERNEL_HEAP_END:
            raise KernelPanic("kernel heap exhausted")
        self._heap_cursor = cursor + size
        return cursor

    # -- scheduling ------------------------------------------------------------------------

    def spawn(self, name: str) -> Process:
        """Create a process and place it on a core (or the runqueue)."""
        process = Process(pid=self._next_pid, name=name)
        self._next_pid += 1
        self._processes[process.pid] = process
        self._place(process)
        return process

    def _place(self, process: Process) -> None:
        for core in self.machine.cpu.cores:
            if core.halted:
                continue
            if not any(p.core_id == core.core_id for p in self._processes.values()):
                process.core_id = core.core_id
                return
        process.core_id = None
        self._runqueue.append(process.pid)

    def exit_process(self, pid: int) -> None:
        """Terminate a process and schedule a waiter in its place."""
        process = self._processes.pop(pid, None)
        if process is None:
            raise KernelPanic(f"no such pid {pid}")
        if process.core_id is not None and self._runqueue:
            nxt = self._processes[self._runqueue.pop(0)]
            nxt.core_id = process.core_id

    def processes_on_core(self, core_id: int) -> List[Process]:
        """Processes currently placed on ``core_id``."""
        return [p for p in self._processes.values() if p.core_id == core_id]

    def deschedule_aps(self) -> None:
        """CPU hotplug: migrate all work off the Application Processors and
        halt them, so they can accept INIT IPIs (paper §4.2, "Suspend OS").
        """
        for core in self.machine.cpu.aps:
            for process in self.processes_on_core(core.core_id):
                process.core_id = None
                self._runqueue.append(process.pid)
            core.halted = True
            self._hotplugged_aps.append(core.core_id)

    def resume_aps(self) -> None:
        """Bring the APs back online and re-place queued processes."""
        for core_id in self._hotplugged_aps:
            core = self.machine.cpu.cores[core_id]
            core.halted = False
            core.received_init_ipi = False
        self._hotplugged_aps.clear()
        queued, self._runqueue = list(self._runqueue), []
        for pid in queued:
            self._place(self._processes[pid])
