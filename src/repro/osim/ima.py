"""IBM-IMA-style integrity measurement architecture — the trusted-boot
baseline Flicker argues against (paper §2.1 and §8).

IMA measures *everything* executed since boot: firmware, bootloader,
kernel, every kernel module, every application and configuration file,
each extended into a static PCR and recorded in an event log.  An
attestation is the whole log plus a quote; the verifier "must assess a
list of all software loaded since boot time (including the OS) and its
configuration information" (§2.1), and because there is no isolation,
"a single compromised piece of code may compromise all subsequent code"
(§8).

This module exists so the reproduction can *measure* that contrast: the
Figure-6-style bench compares verifier burden (entries to evaluate,
trusted-code volume) and information leakage (how much of the platform's
software inventory the attestation reveals) between an IMA attestation
and a Flicker one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.sha1 import sha1
from repro.osim.kernel import UntrustedKernel
from repro.osim.tpm_driver import OSTPMDriver
from repro.tpm.pcr import simulate_extend_chain
from repro.tpm.structures import Quote

#: The PCR IMA extends application measurements into (Linux convention).
IMA_PCR = 10

#: Static PCRs recording the boot chain (SRTM).
BOOT_PCRS = (0, 4)


@dataclass(frozen=True)
class IMALogEntry:
    """One measured event: what ran, and its hash."""

    pcr: int
    name: str
    measurement: bytes


class IntegrityMeasurementArchitecture:
    """A trusted-boot measurement stack on the untrusted kernel."""

    def __init__(self, kernel: UntrustedKernel) -> None:
        self.kernel = kernel
        self.driver = OSTPMDriver(kernel.machine.os_tpm_interface(), nonce_seed=b"ima")
        self.log: List[IMALogEntry] = []
        self._booted = False

    def _measure(self, pcr: int, name: str, content: bytes) -> None:
        measurement = sha1(content)
        self.driver.pcr_extend(pcr, measurement)
        self.log.append(IMALogEntry(pcr=pcr, name=name, measurement=measurement))

    # -- boot-time measurements (SRTM) ------------------------------------------

    def measured_boot(self) -> None:
        """Measure the boot chain: firmware → bootloader → kernel (+ the
        already-loaded modules).  Must run once, right 'after reboot'."""
        if self._booted:
            raise RuntimeError("measured_boot may only run once per boot")
        machine = self.kernel.machine
        self._measure(0, "bios", machine.rng.fork("bios-image").bytes(2048))
        self._measure(4, "bootloader", machine.rng.fork("grub-image").bytes(4096))
        self._measure(4, "kernel", self.kernel._pristine_text)
        for module in self.kernel.loaded_modules():
            self._measure(IMA_PCR, f"module:{module.name}", module.text)
        self._booted = True

    # -- runtime measurements ------------------------------------------------------

    def measure_module_load(self, name: str, text: bytes) -> None:
        """IMA hook for a kernel-module load."""
        self._measure(IMA_PCR, f"module:{name}", text)

    def measure_app_launch(self, name: str, binary: bytes) -> None:
        """IMA hook for an application exec (m ← SHA-1(a.out), §2.1)."""
        self._measure(IMA_PCR, f"app:{name}", binary)

    def measure_config(self, path: str, content: bytes) -> None:
        """IMA hook for a configuration file open."""
        self._measure(IMA_PCR, f"config:{path}", content)

    # -- attestation -------------------------------------------------------------------

    def attest(self, nonce: bytes) -> Tuple[Quote, List[IMALogEntry]]:
        """Produce the trusted-boot attestation: quote over the boot and
        IMA PCRs plus the (untrusted) full event log."""
        quote = self.driver.quote(nonce, BOOT_PCRS + (IMA_PCR,))
        return quote, list(self.log)


@dataclass
class IMAVerificationReport:
    """What an IMA verifier concludes — and what it had to do to conclude
    it (the §8 comparison data)."""

    ok: bool
    entries_evaluated: int
    unknown_entries: Tuple[str, ...]
    #: Everything the attestation revealed about the platform's software.
    disclosed_inventory: Tuple[str, ...]
    failures: Tuple[str, ...] = ()


class IMAVerifier:
    """A remote party verifying trusted-boot attestations.

    Unlike a Flicker verifier (which trusts one PAL measurement), this one
    needs a database of known-good hashes for *every* piece of software
    that may legally run on the platform.
    """

    def __init__(self, known_good: Optional[Dict[str, bytes]] = None) -> None:
        self.known_good: Dict[str, bytes] = dict(known_good or {})

    def learn(self, name: str, content: bytes) -> None:
        """Add a known-good measurement to the database."""
        self.known_good[name] = sha1(content)

    def verify(
        self,
        quote: Quote,
        log: List[IMALogEntry],
        expected_nonce: bytes,
        aik_public,
    ) -> IMAVerificationReport:
        """Replay the log against the quote, then judge every entry."""
        failures: List[str] = []
        if not quote.verify(aik_public):
            failures.append("quote signature invalid")
        if quote.nonce != expected_nonce:
            failures.append("nonce mismatch")

        # Replay every quoted PCR's chain from the log.  Iterating over the
        # *quote's* registers (not the log's) catches an attacker who
        # censors all of a register's entries: an empty chain replays to
        # the boot value, which will not match the quoted register.
        composite = quote.composite.as_dict()
        for pcr in sorted(composite):
            chain = [e.measurement for e in log if e.pcr == pcr]
            if composite[pcr] != simulate_extend_chain(b"\x00" * 20, chain):
                failures.append(f"log does not reproduce PCR {pcr}")

        # Judge every single entry — this is the verifier's burden.
        unknown = tuple(
            entry.name
            for entry in log
            if self.known_good.get(entry.name) != entry.measurement
        )
        if unknown:
            failures.append(f"{len(unknown)} log entries are not known-good")

        return IMAVerificationReport(
            ok=not failures,
            entries_evaluated=len(log),
            unknown_entries=unknown,
            disclosed_inventory=tuple(entry.name for entry in log),
            failures=tuple(failures),
        )
