"""Block devices and bulk file transfers.

Paper §7.5 studies the impact of repeated Flicker sessions on in-flight
block-device transfers (CD-ROM → disk → USB copies during an 8.3-second
distributed-computing session loop): "the kernel did not report any I/O
errors, and integrity checks with md5sum confirmed that the integrity of
all files remained intact."

The model: each device moves data by DMA into kernel buffers.  While a
Flicker session runs, the OS is suspended and cannot service completions;
transfers queue and complete when the OS resumes.  A transfer that waits
longer than the device's timeout is reported as an I/O error — so short
sessions are harmless and very long ones are not, reproducing the paper's
observation and its caveat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.md5 import md5
from repro.errors import OSError_
from repro.hw.machine import Machine

#: Default device command timeout (Linux SCSI-layer default is 30 s).
DEFAULT_TIMEOUT_MS = 30_000.0


@dataclass
class PendingTransfer:
    """A DMA transfer issued while the OS was suspended."""

    issued_at_ms: float
    description: str


class BlockDevice:
    """A DMA-capable block device holding named files.

    Files are stored device-side as byte strings; transfers to/from kernel
    memory go through the machine's DMA bridge and are therefore subject to
    the Device Exclusion Vector.
    """

    def __init__(
        self,
        machine: Machine,
        name: str,
        bandwidth_mb_s: float = 20.0,
        timeout_ms: float = DEFAULT_TIMEOUT_MS,
    ) -> None:
        self.machine = machine
        self.name = name
        self.bandwidth_mb_s = bandwidth_mb_s
        self.timeout_ms = timeout_ms
        self._dma = machine.attach_dma_device(name)
        self._files: Dict[str, bytes] = {}
        self.io_errors: List[str] = []
        self._pending: List[PendingTransfer] = []

    # -- file content -----------------------------------------------------------

    def store_file(self, filename: str, content: bytes) -> None:
        """Place a file on the device (out-of-band, e.g. pre-burned CD)."""
        self._files[filename] = content

    def read_file(self, filename: str) -> bytes:
        """Device-side file contents."""
        try:
            return self._files[filename]
        except KeyError:
            raise OSError_(f"no file {filename!r} on device {self.name}") from None

    def has_file(self, filename: str) -> bool:
        """Whether the device holds ``filename``."""
        return filename in self._files

    def md5sum(self, filename: str) -> bytes:
        """MD5 of a stored file (the paper's integrity check)."""
        return md5(self.read_file(filename))

    # -- transfer timing -----------------------------------------------------------

    def transfer_ms(self, num_bytes: int) -> float:
        """Time to move ``num_bytes`` at this device's bandwidth."""
        return num_bytes / (self.bandwidth_mb_s * 1024 * 1024) * 1000.0


class FileStore:
    """The OS's view of files across block devices, with copy support.

    ``copy`` models a chunked DMA copy: each chunk bounces through a kernel
    buffer.  If a Flicker session suspends the OS mid-copy, the in-flight
    chunk waits; the copy records an I/O error only if the suspension
    exceeded the device timeout.
    """

    #: Copy chunk size (a typical readahead-sized request).
    CHUNK = 128 * 1024

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._buffer_addr: Optional[int] = None

    def _kernel_buffer(self, kernel) -> int:
        if self._buffer_addr is None:
            self._buffer_addr = kernel.kalloc(self.CHUNK)
        return self._buffer_addr

    def copy(
        self,
        kernel,
        src: BlockDevice,
        src_file: str,
        dst: BlockDevice,
        dst_file: str,
        suspension_cb=None,
        flicker_aware: bool = False,
    ) -> None:
        """Copy ``src_file`` from ``src`` to ``dst_file`` on ``dst``.

        ``suspension_cb``, if given, is invoked before each chunk with the
        number of bytes copied so far and may run a Flicker session (it
        returns the session's duration in ms, or 0).  A suspension longer
        than either device's timeout records an I/O error on that device —
        this is the §7.5 experiment's control knob.

        ``flicker_aware`` models the paper's recommended fix (§7.5:
        "transfers should be scheduled such that they do not occur during
        a Flicker session … the best solution is to modify device drivers
        to be Flicker-aware"): the driver quiesces the device — no command
        is outstanding — before the session starts, so no timeout can
        fire regardless of session length.
        """
        content = src.read_file(src_file)
        buffer_addr = self._kernel_buffer(kernel)
        out = bytearray()
        copied = 0
        while copied < len(content):
            if suspension_cb is not None:
                suspended_ms = suspension_cb(copied) or 0.0
                if not flicker_aware:
                    for device in (src, dst):
                        if suspended_ms > device.timeout_ms:
                            device.io_errors.append(
                                f"timeout during {src_file}→{dst_file} at offset {copied}"
                            )
            chunk = content[copied : copied + self.CHUNK]
            # Device → kernel buffer → device, all via DMA.
            self.machine.dma_write(src._dma, buffer_addr, chunk)
            data = self.machine.dma_read(dst._dma, buffer_addr, len(chunk))
            out += data
            self.machine.clock.advance(src.transfer_ms(len(chunk)) + dst.transfer_ms(len(chunk)))
            copied += len(chunk)
        dst.store_file(dst_file, bytes(out))
