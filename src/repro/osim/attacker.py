"""The adversary toolkit.

Paper §3.1's adversary runs code at ring 0 (so it can patch the kernel,
invoke SKINIT with its own arguments, and regain control between Flicker
sessions), controls DMA-capable expansion hardware, and can launch simple
hardware attacks — but cannot monitor the CPU–memory bus.

These helpers give tests concrete attacks to mount.  Each returns enough
information to assert that the defence actually engaged (detector hash
changed, DEV refused the DMA, unseal refused the blob, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import DMAProtectionError, DebugAccessError
from repro.hw.devices import DMADevice
from repro.osim.kernel import (
    KERNEL_TEXT_BASE,
    KERNEL_TEXT_BYTES,
    SYSCALL_TABLE_BASE,
    UntrustedKernel,
)
from repro.tpm.structures import SealedBlob


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one hardware probe attempt.

    ``blocked`` is True when the platform's protections refused the access
    (``error`` names the refusing mechanism); otherwise ``data`` holds the
    bytes the adversary obtained.  Used by fault campaigns, which must
    record the attempt either way rather than unwind on the exception.
    """

    vector: str  # "dma" or "debugger"
    addr: int
    length: int
    blocked: bool
    data: bytes = b""
    error: str = ""


class Attacker:
    """A ring-0 adversary on the untrusted platform."""

    def __init__(self, kernel: UntrustedKernel) -> None:
        self.kernel = kernel
        self.machine = kernel.machine
        self._nic: Optional[DMADevice] = None

    # -- rootkits ------------------------------------------------------------------

    def patch_kernel_text(self, offset: int = 0x1000, payload: bytes = b"\xcc" * 16) -> int:
        """Overwrite kernel text (an inline-hook style rootkit).  Returns
        the patched physical address."""
        if offset + len(payload) > KERNEL_TEXT_BYTES:
            raise ValueError("patch outside kernel text")
        addr = KERNEL_TEXT_BASE + offset
        self.machine.memory.write(addr, payload)
        return addr

    def hook_syscall(self, syscall_number: int = 59) -> int:
        """Redirect a syscall-table entry to attacker-controlled memory (a
        classic syscall-table rootkit).  Returns the hook address."""
        hook_addr = self.kernel.kalloc(64)
        self.machine.memory.write(hook_addr, b"\x90" * 64)
        entry_addr = SYSCALL_TABLE_BASE + 4 * syscall_number
        self.machine.memory.write(entry_addr, hook_addr.to_bytes(4, "little"))
        return hook_addr

    def install_malicious_module(self) -> None:
        """Load a kernel module with attacker text (visible to a detector
        that measures the loaded-module list)."""
        from repro.osim.modules import KernelModule

        class _Evil(KernelModule):
            name = "evil-lkm"
            text = b"\xde\xad\xbe\xef" * 64

        self.kernel.load_module(_Evil())

    # -- hardware-level probes ----------------------------------------------------------

    def dma_probe(self, addr: int, length: int) -> bytes:
        """Attempt a DMA read of arbitrary physical memory via a
        compromised NIC.  Raises :class:`DMAProtectionError` if the DEV
        protects any touched page."""
        if self._nic is None:
            self._nic = self.machine.attach_dma_device("compromised-nic")
        return self._nic.dma_read(addr, length)

    def debugger_probe(self, addr: int, length: int) -> bytes:
        """Attempt a hardware-debugger read.  Raises
        :class:`DebugAccessError` while SKINIT protections are active."""
        return self.machine.debugger.probe(addr, length)

    def dma_probe_checked(self, addr: int, length: int) -> ProbeResult:
        """:meth:`dma_probe`, reported as a :class:`ProbeResult` instead of
        an exception — fault campaigns record the outcome either way."""
        try:
            data = self.dma_probe(addr, length)
        except DMAProtectionError as exc:
            return ProbeResult("dma", addr, length, blocked=True,
                               error=f"{type(exc).__name__}: {exc}")
        return ProbeResult("dma", addr, length, blocked=False, data=data)

    def debugger_probe_checked(self, addr: int, length: int) -> ProbeResult:
        """:meth:`debugger_probe`, reported as a :class:`ProbeResult`."""
        try:
            data = self.debugger_probe(addr, length)
        except DebugAccessError as exc:
            return ProbeResult("debugger", addr, length, blocked=True,
                               error=f"{type(exc).__name__}: {exc}")
        return ProbeResult("debugger", addr, length, blocked=False, data=data)

    def scan_memory_for(self, secret: bytes) -> List[int]:
        """Ring-0 sweep of all physical memory for a secret value —
        the attack that motivates the SLB Core's cleanup phase."""
        return list(self.machine.memory.find_bytes(secret))

    # -- storage-level attacks -------------------------------------------------------------

    @staticmethod
    def replay_blob(old_blob: SealedBlob) -> SealedBlob:
        """'Replay' a stale sealed-storage ciphertext: the OS stores blobs,
        so it can always hand a PAL an old one (paper §4.3.2).  The blob is
        returned unchanged — the attack is in *which* blob gets presented."""
        return old_blob

    @staticmethod
    def tamper_blob(blob: SealedBlob) -> SealedBlob:
        """Flip a ciphertext bit: TPM Unseal must reject the result."""
        mutated = bytearray(blob.ciphertext)
        mutated[len(mutated) // 2] ^= 0x01
        return SealedBlob(
            ciphertext=bytes(mutated), mac=blob.mac, bound_pcrs=blob.bound_pcrs
        )
