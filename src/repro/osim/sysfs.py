"""sysfs: the virtual filesystem exposing kernel state to applications.

The flicker-module publishes four entries — ``control``, ``inputs``,
``outputs``, and ``slb`` (paper §4.2) — and applications drive a Flicker
session entirely through ordinary reads and writes on them.  This module
models just enough of sysfs: a tree of named entries, each with optional
read and write handlers.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import SysfsError

ReadHandler = Callable[[], bytes]
WriteHandler = Callable[[bytes], None]


class SysfsEntry:
    """One sysfs file with read/write handlers."""

    def __init__(
        self,
        name: str,
        read_handler: Optional[ReadHandler] = None,
        write_handler: Optional[WriteHandler] = None,
    ) -> None:
        self.name = name
        self._read_handler = read_handler
        self._write_handler = write_handler

    def read(self) -> bytes:
        """Invoke the read handler."""
        if self._read_handler is None:
            raise SysfsError(f"sysfs entry {self.name!r} is not readable")
        return self._read_handler()

    def write(self, data: bytes) -> None:
        """Invoke the write handler."""
        if self._write_handler is None:
            raise SysfsError(f"sysfs entry {self.name!r} is not writable")
        self._write_handler(data)


class Sysfs:
    """A flat-namespace sysfs (paths like ``flicker/control``)."""

    def __init__(self) -> None:
        self._entries: Dict[str, SysfsEntry] = {}

    def register(self, path: str, entry: SysfsEntry) -> None:
        """Publish an entry at ``path``."""
        if path in self._entries:
            raise SysfsError(f"sysfs path {path!r} already registered")
        self._entries[path] = entry

    def unregister(self, path: str) -> None:
        """Remove an entry (module unload)."""
        if path not in self._entries:
            raise SysfsError(f"sysfs path {path!r} not registered")
        del self._entries[path]

    def read(self, path: str) -> bytes:
        """Read the entry at ``path``."""
        return self._entry(path).read()

    def write(self, path: str, data: bytes) -> None:
        """Write the entry at ``path``."""
        self._entry(path).write(data)

    def exists(self, path: str) -> bool:
        """Whether an entry is registered at ``path``."""
        return path in self._entries

    def _entry(self, path: str) -> SysfsEntry:
        try:
            return self._entries[path]
        except KeyError:
            raise SysfsError(f"no sysfs entry at {path!r}") from None
