"""Event tracing for simulated platform activity.

Every security-relevant action (SKINIT, PCR extends, DMA attempts, sealed
storage operations, OS suspend/resume) is appended to an
:class:`EventTrace`.  Tests use the trace to assert ordering properties —
e.g. that the SLB Core extended the closing sentinel into PCR 17 *before*
the OS resumed — and the benchmark harness uses it to print the Figure 2
timeline of a session.

>>> trace = EventTrace()
>>> _ = trace.emit(0.5, "tpm", "dynamic_pcr_reset")
>>> _ = trace.emit(14.2, "cpu", "skinit", length=4736)
>>> trace.ordered_before("dynamic_pcr_reset", "skinit")
True
>>> print(trace.last())
[    14.200 ms] cpu/skinit length=4736

The :mod:`repro.obs` layer builds on the trace: spans give the same run a
hierarchy, and :func:`repro.obs.trace_to_chrome_events` lifts these flat
events into a Chrome/Perfetto-loadable timeline without losing their
total order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event on the platform.

    Attributes
    ----------
    time_ms:
        Virtual time at which the event occurred.
    source:
        Component that emitted the event (``"cpu"``, ``"tpm"``, ``"os"``,
        ``"flicker"``, ``"dev"``...).
    kind:
        Machine-readable event type (``"skinit"``, ``"pcr_extend"``...).
    detail:
        Free-form structured payload.
    """

    time_ms: float
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        items = ", ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[{self.time_ms:10.3f} ms] {self.source}/{self.kind} {items}"


class EventTrace:
    """Append-only log of :class:`TraceEvent` records."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def emit(self, time_ms: float, source: str, kind: str, **detail: Any) -> TraceEvent:
        """Record and return a new event."""
        event = TraceEvent(time_ms=time_ms, source=source, kind=kind, detail=dict(detail))
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events filtered by kind and/or source and/or arbitrary predicate."""
        out = self._events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if source is not None:
            out = [e for e in out if e.source == source]
        if predicate is not None:
            out = [e for e in out if predicate(e)]
        return list(out)

    def last(self, kind: Optional[str] = None) -> Optional[TraceEvent]:
        """Most recent event (optionally of a given kind), or ``None``."""
        matches = self.events(kind=kind)
        return matches[-1] if matches else None

    def ordered_before(self, first_kind: str, second_kind: str) -> bool:
        """True if the *last* event of ``first_kind`` precedes the *first*
        event of ``second_kind``.  Used to assert protocol ordering."""
        firsts = self.events(kind=first_kind)
        seconds = self.events(kind=second_kind)
        if not firsts or not seconds:
            return False
        return self._events.index(firsts[-1]) < self._events.index(seconds[0])

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    def format_timeline(self) -> str:
        """Human-readable rendering of the whole trace."""
        return "\n".join(str(e) for e in self._events)
