"""Timing profiles calibrated from the paper's microbenchmarks.

The paper's absolute latencies come from two sources: the TPM chip (by far
the dominant cost: Quote, Seal, Unseal, the SKINIT transfer of the SLB into
the TPM for hashing) and the host CPU (SHA-1 hashing, RSA operations).  Each
is modelled by a small dataclass of calibration constants:

* :class:`TPMTimings` — per-command latencies.  Two concrete profiles are
  provided: ``BROADCOM_BCM0102`` (the paper's primary test TPM, in the HP
  dc5750) and ``INFINEON_1_2`` (the faster chip the paper cites for Quote in
  331 ms and Unseal in 391 ms).
* :class:`HostTimings` — CPU-side costs for the AMD Athlon64 X2 4200+
  (2.2 GHz) testbed: SHA-1 throughput, RSA key generation / decrypt / sign,
  and the network path to the remote verifier (12 hops, 9.45 ms average
  ping).

Calibration notes (paper reference → constant):

* Table 2 (SKINIT vs SLB size: 0/4/16/32/64 KB → ~0/11.9/45.0/89.2/177.5 ms)
  → ``skinit_base_ms`` + ``skinit_per_kb_ms`` (linear fit: 0.9 + 2.76/KB).
* Table 1 (PCR Extend 1.2 ms, Quote 972.7 ms) → ``extend_ms``, ``quote_ms``.
* Table 4 (Unseal 898.3 ms) and Figure 9 (Unseal 905.4 ms for the larger
  SSH blob) → ``unseal_base_ms`` + ``unseal_per_byte_ms``.
* Figure 9 (Seal 10.2 ms, KeyGen 185.7 ms, Decrypt 4.6 ms) →
  ``seal_base_ms``, ``rsa1024_keygen_ms``, ``rsa1024_private_op_ms``.
* Section 7.1 (GetRandom of 128 bytes in 1.3 ms) → ``getrandom_base_ms`` +
  ``getrandom_per_byte_ms``.
* Table 1 (hash of kernel: 22.0 ms) → ``sha1_ms_per_kb`` with the simulated
  kernel's measured region sized to match (see ``repro.osim.kernel``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class TPMTimings:
    """Latency model for a TPM v1.2 chip, in milliseconds."""

    name: str
    #: Fixed cost of entering SKINIT (CPU state change; <1 ms per Table 2).
    skinit_base_ms: float
    #: Cost per KB of SLB transferred to the TPM for hashing during SKINIT.
    skinit_per_kb_ms: float
    #: TPM_Extend of a single 20-byte measurement.
    extend_ms: float
    #: TPM_PCRRead.
    pcr_read_ms: float
    #: TPM_Quote with a 2048-bit AIK.
    quote_ms: float
    #: TPM_Seal of a small blob (asymmetric op inside the TPM).
    seal_base_ms: float
    #: Additional Seal cost per byte of plaintext.
    seal_per_byte_ms: float
    #: TPM_Unseal base cost.
    unseal_base_ms: float
    #: Additional Unseal cost per byte of sealed plaintext.
    unseal_per_byte_ms: float
    #: TPM_GetRandom fixed cost.
    getrandom_base_ms: float
    #: TPM_GetRandom per-byte cost.
    getrandom_per_byte_ms: float
    #: OIAP/OSAP session setup.
    session_ms: float
    #: TPM_NV_ReadValue / WriteValue / monotonic-counter increment.
    nv_op_ms: float

    def skinit_ms(self, slb_bytes: int) -> float:
        """Latency of the SKINIT instruction for an SLB of ``slb_bytes``.

        Per Table 2 the cost is dominated by streaming the SLB image to the
        TPM for measurement and grows linearly with the image size.
        """
        return self.skinit_base_ms + self.skinit_per_kb_ms * (slb_bytes / 1024.0)

    def seal_ms(self, plaintext_bytes: int) -> float:
        """Latency of TPM_Seal for a plaintext of the given size."""
        return self.seal_base_ms + self.seal_per_byte_ms * plaintext_bytes

    def unseal_ms(self, plaintext_bytes: int) -> float:
        """Latency of TPM_Unseal yielding a plaintext of the given size."""
        return self.unseal_base_ms + self.unseal_per_byte_ms * plaintext_bytes

    def getrandom_ms(self, num_bytes: int) -> float:
        """Latency of TPM_GetRandom for ``num_bytes`` of output."""
        return self.getrandom_base_ms + self.getrandom_per_byte_ms * num_bytes


@dataclass(frozen=True)
class HostTimings:
    """Latency model for host-CPU work and the network path."""

    name: str
    #: SHA-1 throughput on the host CPU (ms per KB hashed).
    sha1_ms_per_kb: float
    #: RSA-1024 key generation (mean; the paper reports 14% std error).
    rsa1024_keygen_ms: float
    #: RSA-1024 private-key operation (decrypt or sign).
    rsa1024_private_op_ms: float
    #: RSA-1024 public-key operation (encrypt or verify, e=65537).
    rsa1024_public_op_ms: float
    #: md5crypt password hash (1000 MD5 rounds).
    md5crypt_ms: float
    #: AES-128 throughput (ms per KB).
    aes_ms_per_kb: float
    #: HMAC-SHA1 fixed overhead beyond the hash itself.
    hmac_overhead_ms: float
    #: One-way network latency to the remote verifier (avg ping 9.45 ms).
    network_one_way_ms: float
    #: Network hops to the remote verifier (informational; §7.1 says 12).
    network_hops: int
    #: TCP + SSH transport setup against an *unmodified* server (§7.4.1).
    ssh_setup_ms: float
    #: Transport/negotiation share of the flicker-password connection path
    #: (the §7.4.1 client-side total of 1221 ms minus the PAL-1 and Quote
    #: components).
    ssh_transport_ms: float
    #: Unmodified server-side password check (§7.4.1: roughly 10 ms).
    ssh_plain_auth_ms: float
    #: Linux 2.6.20 kernel build on the test machine (§7.2: 7 m 22.6 s).
    kernel_build_ms: float


@dataclass(frozen=True)
class TimingProfile:
    """A complete platform timing model: one TPM plus one host."""

    tpm: TPMTimings
    host: HostTimings

    def with_tpm(self, tpm: TPMTimings) -> "TimingProfile":
        """Return a copy of this profile using a different TPM chip."""
        return replace(self, tpm=tpm)


#: The paper's primary TPM: Broadcom BCM0102 in the HP dc5750.
BROADCOM_BCM0102 = TPMTimings(
    name="Broadcom BCM0102",
    skinit_base_ms=0.9,
    skinit_per_kb_ms=2.76,
    extend_ms=1.2,
    pcr_read_ms=0.8,
    quote_ms=972.7,
    seal_base_ms=10.2,
    seal_per_byte_ms=0.003,
    unseal_base_ms=897.8,
    unseal_per_byte_ms=0.0237,
    getrandom_base_ms=0.6,
    getrandom_per_byte_ms=0.0055,
    session_ms=3.0,
    nv_op_ms=12.0,
)

#: The faster Infineon v1.2 TPM the paper cites (Quote 331 ms, Unseal 391 ms).
INFINEON_1_2 = TPMTimings(
    name="Infineon v1.2",
    skinit_base_ms=0.9,
    skinit_per_kb_ms=2.76,
    extend_ms=0.9,
    pcr_read_ms=0.6,
    quote_ms=331.0,
    seal_base_ms=8.1,
    seal_per_byte_ms=0.003,
    unseal_base_ms=390.5,
    unseal_per_byte_ms=0.010,
    getrandom_base_ms=0.5,
    getrandom_per_byte_ms=0.005,
    session_ms=2.0,
    nv_op_ms=9.0,
)

#: Host model for the HP dc5750 (AMD Athlon64 X2 4200+, 2.2 GHz) and the
#: remote verifier 12 hops away (average ping 9.45 ms → 4.725 ms one-way).
HOST_HP_DC5750 = HostTimings(
    name="HP dc5750 (Athlon64 X2 4200+)",
    sha1_ms_per_kb=0.0078,
    rsa1024_keygen_ms=185.7,
    rsa1024_private_op_ms=4.6,
    rsa1024_public_op_ms=0.25,
    md5crypt_ms=0.9,
    aes_ms_per_kb=0.012,
    hmac_overhead_ms=0.004,
    network_one_way_ms=4.725,
    network_hops=12,
    ssh_setup_ms=210.0,
    ssh_transport_ms=55.0,
    ssh_plain_auth_ms=10.0,
    kernel_build_ms=442_600.0,
)

#: The paper's forward-looking claim (abstract / §7, citing [19]): proposed
#: hardware modifications "can improve performance by up to six orders of
#: magnitude".  This profile models such next-generation support — TPM-class
#: operations at on-die-engine latencies (microseconds) and an SLB
#: measurement path that is no longer bottlenecked on an LPC bus.
FUTURE_HW_TPM = TPMTimings(
    name="Next-gen (McCune et al. [19] projection)",
    skinit_base_ms=0.001,
    skinit_per_kb_ms=0.00005,
    extend_ms=0.001,
    pcr_read_ms=0.001,
    quote_ms=0.01,
    seal_base_ms=0.005,
    seal_per_byte_ms=0.0,
    unseal_base_ms=0.005,
    unseal_per_byte_ms=0.0,
    getrandom_base_ms=0.001,
    getrandom_per_byte_ms=0.0,
    session_ms=0.001,
    nv_op_ms=0.002,
)

#: A simTPM-class mobile TPM (PAPERS.md: "simTPM: User-centric TPM for
#: Mobile Devices"): the TPM runs in the SIM's secure element next to a
#: TrustZone host, so commands skip the LPC bus entirely.  Latencies sit
#: between the discrete chips and the future-hardware projection —
#: millisecond-scale asymmetric ops, sub-millisecond bookkeeping.  Used
#: as a per-tenant vTPM latency scenario (:mod:`repro.vtpm`): one tenant
#: on discrete-chip timings, another on mobile timings, same hardware.
SIMTPM_MOBILE = TPMTimings(
    name="simTPM (mobile secure element)",
    skinit_base_ms=0.4,
    skinit_per_kb_ms=0.11,
    extend_ms=0.2,
    pcr_read_ms=0.1,
    quote_ms=25.0,
    seal_base_ms=2.4,
    seal_per_byte_ms=0.0008,
    unseal_base_ms=12.1,
    unseal_per_byte_ms=0.002,
    getrandom_base_ms=0.1,
    getrandom_per_byte_ms=0.001,
    session_ms=0.5,
    nv_op_ms=1.6,
)

#: Default platform profile: the paper's testbed.
DEFAULT_PROFILE = TimingProfile(tpm=BROADCOM_BCM0102, host=HOST_HP_DC5750)

#: Alternate profile with the faster Infineon TPM (used by ablation benches).
INFINEON_PROFILE = TimingProfile(tpm=INFINEON_1_2, host=HOST_HP_DC5750)

#: Next-generation hardware projection (used by the future-hardware bench).
FUTURE_HW_PROFILE = TimingProfile(tpm=FUTURE_HW_TPM, host=HOST_HP_DC5750)

#: Mobile secure-element profile (the simTPM-like vTPM tenant scenario).
SIMTPM_PROFILE = TimingProfile(tpm=SIMTPM_MOBILE, host=HOST_HP_DC5750)
