"""Deterministic random number generation for the simulation.

The real platform draws entropy from the TPM's hardware RNG.  The simulation
needs reproducible runs, so all randomness flows through a
:class:`DeterministicRNG` seeded explicitly.  The generator is a simple
counter-mode construction over SHA-512 (implemented by our own crypto
substrate would create a circular import, so this module uses a small
self-contained xorshift/SplitMix64 core — statistical quality is more than
adequate for simulation and for generating RSA candidate primes, and the
stream is stable across Python versions, unlike :mod:`random`'s internals
would be if we depended on pickled state).
"""

from __future__ import annotations

from typing import List

_MASK64 = (1 << 64) - 1


class DeterministicRNG:
    """SplitMix64-based deterministic byte/integer generator.

    SplitMix64 passes BigCrush and has a full 2^64 period per seed; it is
    the standard seeding generator for xoshiro-family PRNGs.  We use it
    directly because the simulation only needs statistical (not
    cryptographic) quality — the *simulated* TPM presents this stream as its
    hardware RNG.
    """

    def __init__(self, seed: int = 0xF11C4E12_2008) -> None:
        self._state = seed & _MASK64

    def _next64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    # -- public API ----------------------------------------------------------

    def getstate(self) -> int:
        """Opaque snapshot of the generator state.

        Together with :meth:`setstate` this supports snapshot/clone of
        any component that owns an RNG: restoring a snapshot replays the
        identical future stream.
        """
        return self._state

    def setstate(self, state: int) -> None:
        """Restore a snapshot previously taken with :meth:`getstate`."""
        self._state = state & _MASK64

    def clone(self) -> "DeterministicRNG":
        """Independent copy that emits the identical future stream."""
        return DeterministicRNG(self._state)

    def bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        if n < 0:
            raise ValueError("cannot generate a negative number of bytes")
        # The SplitMix64 step is inlined (rather than calling _next64 per
        # word): bulk byte generation — 64 KB of kernel text per machine —
        # is construction's hot loop at fleet scale.
        state = self._state
        chunks = []
        append = chunks.append
        for _ in range((n + 7) // 8):
            state = (state + 0x9E3779B97F4A7C15) & _MASK64
            z = ((state ^ (state >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
            append((z ^ (z >> 31)).to_bytes(8, "big"))
        self._state = state
        return b"".join(chunks)[:n]

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        if lo > hi:
            raise ValueError("empty range")
        span = hi - lo + 1
        # Rejection sampling to avoid modulo bias.
        nbits = span.bit_length()
        nbytes = (nbits + 7) // 8
        while True:
            candidate = int.from_bytes(self.bytes(nbytes), "big")
            candidate &= (1 << nbits) - 1
            if candidate < span:
                return lo + candidate

    def randbits(self, k: int) -> int:
        """Uniform integer with exactly ``k`` random bits (top bit may be 0)."""
        if k <= 0:
            raise ValueError("k must be positive")
        nbytes = (k + 7) // 8
        value = int.from_bytes(self.bytes(nbytes), "big")
        return value >> (nbytes * 8 - k)

    def odd_integer(self, bits: int) -> int:
        """Random odd integer of exactly ``bits`` bits (both end bits set).

        Used for RSA prime candidates: the top bit guarantees the product of
        two such primes has the full modulus width, the bottom bit oddness.
        """
        if bits < 2:
            raise ValueError("need at least 2 bits")
        value = self.randbits(bits)
        value |= (1 << (bits - 1)) | 1
        return value

    def shuffle(self, items: List) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def gauss(self, mu: float, sigma: float) -> float:
        """Approximately normal variate via the Irwin-Hall sum of 12
        uniforms (exact enough for latency jitter modelling)."""
        total = sum(self._next64() / float(_MASK64) for _ in range(12))
        return mu + sigma * (total - 6.0)

    def fork(self, label: str) -> "DeterministicRNG":
        """Derive an independent child generator from this one.

        Components that need their own stream (e.g. each TPM) fork the
        platform RNG so that adding a consumer does not perturb others.
        """
        h = 0xCBF29CE484222325  # FNV-1a 64-bit
        for b in label.encode("utf-8"):
            h = ((h ^ b) * 0x100000001B3) & _MASK64
        return DeterministicRNG((self._next64() ^ h) & _MASK64)
