"""Simulation substrate: virtual time, timing profiles, deterministic RNG,
and event tracing.

The paper measures wall-clock latencies on an HP dc5750 (AMD Athlon64 X2
4200+, Broadcom BCM0102 TPM) using RDTSC.  This reproduction replaces the
testbed with a *virtual clock*: every simulated operation (a TPM command, an
SKINIT, a block of application work) advances the clock by an amount taken
from a :class:`~repro.sim.timing.TimingProfile`.  The profiles are calibrated
from the paper's own microbenchmarks, so the benchmark harness reproduces the
paper's tables by reading virtual time rather than host wall time.
"""

from repro.sim.clock import VirtualClock
from repro.sim.parallel import map_seeded, resolve_workers
from repro.sim.rng import DeterministicRNG
from repro.sim.timing import (
    BROADCOM_BCM0102,
    INFINEON_1_2,
    FUTURE_HW_TPM,
    HOST_HP_DC5750,
    TimingProfile,
    TPMTimings,
    HostTimings,
)
from repro.sim.trace import EventTrace, TraceEvent
from repro.sim.sched import (
    Delay,
    Event,
    EventScheduler,
    Mailbox,
    Process,
    Receive,
    ScheduledClock,
    SchedulerError,
)

__all__ = [
    "VirtualClock",
    "EventScheduler",
    "Event",
    "SchedulerError",
    "ScheduledClock",
    "Process",
    "Mailbox",
    "Delay",
    "Receive",
    "DeterministicRNG",
    "map_seeded",
    "resolve_workers",
    "TimingProfile",
    "TPMTimings",
    "HostTimings",
    "BROADCOM_BCM0102",
    "INFINEON_1_2",
    "FUTURE_HW_TPM",
    "HOST_HP_DC5750",
    "EventTrace",
    "TraceEvent",
]
