"""Per-machine clocks that live on a shared event schedule.

A :class:`ScheduledClock` is a :class:`~repro.sim.clock.VirtualClock`
bound to an :class:`~repro.sim.sched.events.EventScheduler`.  It does not
override ``advance`` — machine-local work charges local time through the
exact code path the single-machine simulation uses, which is what keeps
legacy Figure 2 timings bit-identical — but it adds the two capabilities
a fleet needs:

* :meth:`sync_to` — fast-forward an idle machine to the global time when
  one of its events fires.  The skipped interval is accounted as *idle*
  (never attributed to open spans), so per-machine utilization is just
  ``busy_ms / now()``.
* registration — the scheduler keeps every machine clock in
  ``scheduler.clocks`` for fleet-wide reporting.

>>> from repro.sim.sched.events import EventScheduler
>>> sched = EventScheduler()
>>> clock = ScheduledClock(sched, machine_id="client-00")
>>> clock.sync_to(25.0)
>>> (clock.now(), clock.idle_ms, clock.busy_ms)
(25.0, 25.0, 0.0)
>>> _ = clock.advance(5.0)
>>> (clock.now(), clock.idle_ms, clock.busy_ms)
(30.0, 25.0, 5.0)
"""

from __future__ import annotations

from repro.sim.clock import VirtualClock
from repro.sim.sched.events import EventScheduler


class ScheduledClock(VirtualClock):
    """A machine-local virtual clock registered with an event scheduler."""

    def __init__(self, scheduler: EventScheduler, machine_id: str = "machine-0",
                 start_ms: float = 0.0) -> None:
        super().__init__(start_ms)
        self.scheduler = scheduler
        self.machine_id = machine_id
        #: Milliseconds this machine spent waiting for global time (blocked
        #: on a message, or between scheduled activations).
        self.idle_ms = 0.0
        scheduler.register_clock(self)

    @property
    def busy_ms(self) -> float:
        """Milliseconds of actual machine-local work (advances)."""
        return self._now_ms - self.idle_ms

    @property
    def utilization(self) -> float:
        """Fraction of this machine's timeline spent doing work."""
        return self.busy_ms / self._now_ms if self._now_ms else 0.0

    def sync_to(self, time_ms: float) -> None:
        """Jump forward to global time ``time_ms`` (no-op if not behind).

        The jump is idle time: it is *not* scaled by skew and *not*
        attributed to any open span, mirroring a machine sitting in the
        OS idle loop until its next scheduled activation.
        """
        if time_ms > self._now_ms:
            self.idle_ms += time_ms - self._now_ms
            self._now_ms = time_ms

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ScheduledClock({self.machine_id!r}, now={self._now_ms:.3f}ms, "
                f"idle={self.idle_ms:.3f}ms)")
