"""Discrete-event scheduling for multi-machine simulations.

The original reproduction drove one :class:`~repro.sim.clock.VirtualClock`
inline from every layer: a single serial timeline, which is exactly right
for reproducing the paper's one-machine Figure 2 measurements but cannot
express *many* machines making progress concurrently in virtual time.

This package turns the time model into a deterministic discrete-event
simulation, the way SystemC-TLM virtual prototypes schedule concurrent
hardware/software activity:

* :class:`~repro.sim.sched.events.EventScheduler` — the seeded event
  queue.  Events fire in ``(time, seq)`` order: ties on virtual time are
  broken by scheduling order, so a run is a pure function of its inputs.
* :class:`~repro.sim.sched.clock.ScheduledClock` — a per-machine
  :class:`~repro.sim.clock.VirtualClock` registered with the scheduler.
  Machine-local work still advances the local clock synchronously (all
  Figure 2 code paths are untouched, keeping single-machine timings
  bit-identical); the scheduler fast-forwards idle machines to the global
  time whenever they resume.
* :class:`~repro.sim.sched.process.Process` — a cooperative task written
  as a generator.  Between ``yield``\\ s a process runs ordinary
  synchronous simulation code (e.g. a whole Flicker session); at a
  ``yield`` it hands control back so other machines' earlier events run
  first.
* :class:`~repro.sim.sched.process.Mailbox` — deterministic FIFO
  message delivery between processes (network arrivals land here).

The legacy single-machine API is the degenerate case: a lone
``VirtualClock`` *is* a one-machine schedule with no pending events, and
``ScheduledClock`` subclasses it without overriding ``advance``, so the
two produce identical timings for identical work.
"""

from repro.sim.sched.events import Event, EventScheduler, SchedulerError
from repro.sim.sched.clock import ScheduledClock
from repro.sim.sched.process import Delay, Mailbox, Process, Receive

__all__ = [
    "Event",
    "EventScheduler",
    "SchedulerError",
    "ScheduledClock",
    "Delay",
    "Mailbox",
    "Process",
    "Receive",
]
