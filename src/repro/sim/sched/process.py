"""Cooperative processes and mailboxes on top of the event scheduler.

A :class:`Process` wraps a Python generator.  Between ``yield``\\ s the
generator runs ordinary synchronous simulation code — a whole Flicker
session, say — advancing its machine's local clock.  Yield values are the
scheduling vocabulary:

``yield 12.5`` (or ``yield Delay(12.5)``)
    sleep 12.5 virtual milliseconds of machine-local time, then resume.

``yield 0``  (or bare ``yield``)
    a pure scheduling point: cede to any other machine whose next event
    is not later than this machine's local time.

``yield Receive(mailbox)``
    block until a message is available; the message becomes the value of
    the ``yield`` expression.

The driver keeps the fleet invariant: a process resuming at global time
``T`` first fast-forwards its clock to ``T`` (idle time), runs its next
synchronous burst to some local time ``T' >= T``, and schedules its
continuation at ``T'`` (+ any requested delay).  Everything is ordered by
the scheduler's ``(time, seq)`` heap, so runs replay exactly.

>>> from repro.sim.sched.events import EventScheduler
>>> from repro.sim.sched.clock import ScheduledClock
>>> sched = EventScheduler()
>>> a, b = ScheduledClock(sched, "a"), ScheduledClock(sched, "b")
>>> order = []
>>> def worker(clock, step_ms):
...     for _ in range(2):
...         _ = clock.advance(step_ms)
...         order.append((clock.machine_id, clock.now()))
...         yield 0
>>> _ = Process(sched, a, worker(a, 3.0), name="a")
>>> _ = Process(sched, b, worker(b, 5.0), name="b")
>>> _ = sched.run()
>>> order
[('a', 3.0), ('b', 5.0), ('a', 6.0), ('b', 10.0)]
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Any, Deque, Generator, List, Optional, Tuple

from repro.sim.sched.clock import ScheduledClock
from repro.sim.sched.events import EventScheduler, SchedulerError


@dataclass(frozen=True)
class Delay:
    """Yield command: sleep this many virtual milliseconds."""

    ms: float


@dataclass(frozen=True)
class Receive:
    """Yield command: block until ``mailbox`` has a message."""

    mailbox: "Mailbox"


class Process:
    """One cooperative task bound to a machine clock.

    The process schedules its first step immediately on construction
    (at the machine's current local time), so building a fleet and then
    calling ``scheduler.run()`` is enough to drive everything.
    """

    def __init__(self, scheduler: EventScheduler, clock: ScheduledClock,
                 generator: Generator, name: str = "process") -> None:
        self.scheduler = scheduler
        self.clock = clock
        self.name = name
        self.done = False
        self.result: Any = None
        self._gen = generator
        scheduler.at(max(scheduler.now(), clock.now()),
                     partial(self._resume, None), label=f"{name}:start")

    # -- driver ---------------------------------------------------------------

    def _resume(self, value: Any) -> None:
        """Scheduler callback: run the generator to its next yield."""
        self.clock.sync_to(self.scheduler.now())
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            return
        local = self.clock.now()
        if command is None:
            command = Delay(0.0)
        elif isinstance(command, (int, float)):
            command = Delay(float(command))
        if isinstance(command, Delay):
            if command.ms < 0:
                raise SchedulerError(f"{self.name}: negative delay {command.ms}")
            self.scheduler.at(local + command.ms, partial(self._resume, None),
                              label=f"{self.name}:resume")
        elif isinstance(command, Receive):
            command.mailbox._register(self, local)
        else:
            raise SchedulerError(
                f"{self.name} yielded {command!r}; expected a delay in ms, "
                f"Delay, Receive, or None"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


class Mailbox:
    """Deterministic FIFO message queue connecting processes.

    Messages are appended by :meth:`put` (typically from a scheduled
    network-delivery event) and consumed by processes yielding
    :class:`Receive`.  Waiters are woken strictly in the order they
    started waiting; a waiter resumes no earlier than the later of the
    delivery time and the moment it began waiting.
    """

    def __init__(self, scheduler: EventScheduler, name: str = "mailbox") -> None:
        self.scheduler = scheduler
        self.name = name
        self._items: Deque[Any] = deque()
        #: (process, local time it began waiting) in arrival order.
        self._waiters: Deque[Tuple[Process, float]] = deque()
        self.delivered = 0

    def put(self, item: Any) -> None:
        """Deposit ``item`` now; wakes the longest-waiting process."""
        self.delivered += 1
        if self._waiters:
            process, since = self._waiters.popleft()
            wake_at = max(self.scheduler.now(), since)
            self.scheduler.at(wake_at, partial(process._resume, item),
                              label=f"{self.name}:wake:{process.name}")
        else:
            self._items.append(item)

    def _register(self, process: Process, local_time: float) -> None:
        """A process yielded ``Receive(self)`` at its ``local_time``."""
        if self._items:
            item = self._items.popleft()
            self.scheduler.at(local_time, partial(process._resume, item),
                              label=f"{self.name}:wake:{process.name}")
        else:
            self._waiters.append((process, local_time))

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting(self) -> List[str]:
        """Names of processes currently blocked on this mailbox."""
        return [p.name for p, _ in self._waiters]

    def receive(self) -> Receive:
        """Convenience: ``yield mailbox.receive()`` inside a process."""
        return Receive(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Mailbox({self.name!r}, queued={len(self._items)}, "
                f"waiting={len(self._waiters)})")
