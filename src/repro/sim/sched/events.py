"""The event queue at the heart of the fleet simulation.

An :class:`EventScheduler` holds a priority queue of :class:`Event`
records ordered by ``(time_ms, seq)``.  ``seq`` is a monotonically
increasing counter assigned at scheduling time, so two events at the same
virtual instant always fire in the order they were scheduled — the
deterministic tie-break every replay guarantee in this repository leans
on.

>>> sched = EventScheduler(seed=7)
>>> fired = []
>>> _ = sched.at(5.0, lambda: fired.append("b"))
>>> _ = sched.at(5.0, lambda: fired.append("c"))
>>> _ = sched.at(1.0, lambda: fired.append("a"))
>>> sched.run()
5.0
>>> fired
['a', 'b', 'c']
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.rng import DeterministicRNG


class SchedulerError(RuntimeError):
    """A scheduling-protocol violation (event in the past, bad yield...)."""


class Event:
    """One scheduled callback.

    Events are created through :meth:`EventScheduler.at` /
    :meth:`EventScheduler.after`; cancelling one simply marks it dead (the
    heap entry is skipped when popped, which keeps cancellation O(1)).
    """

    __slots__ = ("time_ms", "seq", "callback", "label", "cancelled", "fired")

    def __init__(self, time_ms: float, seq: int,
                 callback: Callable[[], Any], label: str = "") -> None:
        self.time_ms = time_ms
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.fired = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time_ms, self.seq) < (other.time_ms, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time_ms:.3f}, seq={self.seq}, {self.label!r}{state})"


class EventScheduler:
    """A deterministic discrete-event scheduler over virtual milliseconds.

    The scheduler owns global virtual time: executing an event advances
    ``now()`` to the event's timestamp (time never moves backwards).  It
    also owns a seeded RNG stream (forked per consumer label) so sources
    of modelled randomness — network jitter, for one — draw from a stream
    that is stable regardless of how many other consumers exist.
    """

    #: Compact the heap when at least this many cancelled events are
    #: buried in it...
    COMPACT_MIN_CANCELLED = 64
    #: ...and they make up at least this fraction of the heap.
    COMPACT_FRACTION = 0.5

    def __init__(self, seed: int = 2008) -> None:
        self.seed = seed
        self._heap: List[Event] = []
        self._seq = 0
        self._now_ms = 0.0
        self._executed = 0
        self._cancelled = 0
        self._compactions = 0
        self._rng_root = DeterministicRNG(seed)
        #: Clocks registered via :meth:`register_clock` (one per machine).
        self.clocks: List = []

    # -- time -----------------------------------------------------------------

    def now(self) -> float:
        """Current global virtual time in milliseconds."""
        return self._now_ms

    @property
    def events_executed(self) -> int:
        """Count of events fired so far (cancelled events excluded)."""
        return self._executed

    def rng(self, label: str) -> DeterministicRNG:
        """A dedicated deterministic RNG stream for ``label``.

        Forked from the scheduler seed and the label only, so adding a new
        consumer never perturbs an existing stream.
        """
        return DeterministicRNG(self.seed).fork(f"sched:{label}")

    # -- clock registry --------------------------------------------------------

    def register_clock(self, clock) -> None:
        """Attach a per-machine clock (kept for sync and reporting)."""
        self.clocks.append(clock)

    # -- scheduling ------------------------------------------------------------

    def at(self, time_ms: float, callback: Callable[[], Any],
           label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``time_ms``."""
        if time_ms < self._now_ms:
            raise SchedulerError(
                f"cannot schedule {label or 'event'} at {time_ms:.3f} ms; "
                f"it is already {self._now_ms:.3f} ms"
            )
        event = Event(time_ms, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay_ms: float, callback: Callable[[], Any],
              label: str = "") -> Event:
        """Schedule ``callback`` ``delay_ms`` from the current time."""
        if delay_ms < 0:
            raise SchedulerError("cannot schedule into the past")
        return self.at(self._now_ms + delay_ms, callback, label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired).

        Cancellation is O(1): the event is flagged and skipped when it
        surfaces at the heap top.  Cancelled events buried *inside* the
        heap are reclaimed by periodic compaction — once they are both
        numerous (:attr:`COMPACT_MIN_CANCELLED`) and a large fraction of
        the heap (:attr:`COMPACT_FRACTION`), the heap is rebuilt without
        them.  Compaction cannot change execution order: pop order is the
        total order ``(time_ms, seq)``, independent of heap layout.
        """
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_MIN_CANCELLED
                and self._cancelled >= self.COMPACT_FRACTION * len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._compactions += 1

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted."""
        return self._compactions

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled

    # -- execution -------------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when idle."""
        self._drop_cancelled()
        return self._heap[0].time_ms if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1

    def step(self) -> Optional[Event]:
        """Execute the next event; returns it, or ``None`` when idle."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._now_ms = event.time_ms
        self._executed += 1
        event.fired = True
        event.callback()
        return event

    def run(self, until_ms: Optional[float] = None,
            max_events: int = 10_000_000) -> float:
        """Drain the queue (optionally stopping at ``until_ms``).

        Returns the final global time.  ``max_events`` is a runaway
        backstop: a scheduler that keeps feeding itself events past it
        raises instead of spinning forever.
        """
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until_ms is not None and next_time > until_ms:
                self._now_ms = until_ms
                break
            self.step()
            executed += 1
            if executed > max_events:
                raise SchedulerError(
                    f"run() exceeded {max_events} events; likely a livelock"
                )
        return self._now_ms

    @property
    def idle(self) -> bool:
        """True when no live events are pending."""
        self._drop_cancelled()
        return not self._heap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"EventScheduler(now={self._now_ms:.3f}ms, "
                f"pending={len(self._heap)}, executed={self._executed})")
