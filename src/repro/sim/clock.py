"""Virtual clock for the simulated platform.

All latencies in the reproduction are expressed in *milliseconds of virtual
time*.  Components advance the clock explicitly; nothing in the simulation
reads the host's wall clock, which keeps every experiment deterministic and
lets the benchmark harness regenerate the paper's tables on any machine.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Tuple


class VirtualClock:
    """A monotonically increasing virtual clock measured in milliseconds.

    The clock supports named *spans* (used to attribute time to the phases of
    a Flicker session, e.g. ``SKINIT`` vs ``TPM Unseal``) and checkpointing
    for measuring elapsed time across a region of simulated work.

    Example
    -------
    >>> clock = VirtualClock()
    >>> with clock.span("SKINIT"):
    ...     clock.advance(14.3)
    >>> clock.now()
    14.3
    >>> clock.span_totals()["SKINIT"]
    14.3
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError("clock cannot start at negative time")
        self._now_ms = float(start_ms)
        self._skew = 1.0
        self._span_stack: List[str] = []
        self._span_totals: dict = {}
        self._span_log: List[Tuple[str, float, float]] = []
        #: Optional span listener (an :class:`repro.obs.ObservabilityHub`):
        #: notified on every span open/close.  ``None`` (the default) keeps
        #: the clock observability-free at zero cost beyond one None test.
        self._span_listener = None

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ms

    @property
    def skew(self) -> float:
        """Current clock-skew factor (1.0 = nominal rate)."""
        return self._skew

    def set_skew(self, factor: float) -> None:
        """Scale every subsequent :meth:`advance` by ``factor``.

        Models a mis-calibrated or fault-injected oscillator: all latencies
        stretch (factor > 1) or shrink (factor < 1) uniformly, which stays
        deterministic.  Used by the fault-injection layer
        (:mod:`repro.faults`)."""
        if factor <= 0:
            raise ValueError("clock skew factor must be positive")
        self._skew = float(factor)

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` milliseconds (scaled by the
        active skew factor) and return the new time.  Attributes the delta
        to every span currently open."""
        if delta_ms < 0:
            raise ValueError("cannot advance the clock backwards")
        delta_ms *= self._skew
        self._now_ms += delta_ms
        for name in self._span_stack:
            self._span_totals[name] = self._span_totals.get(name, 0.0) + delta_ms
        return self._now_ms

    def elapsed_since(self, checkpoint_ms: float) -> float:
        """Milliseconds elapsed since a previously recorded ``now()``."""
        return self._now_ms - checkpoint_ms

    # -- spans --------------------------------------------------------------

    def set_span_listener(self, listener) -> None:
        """Install (or with ``None``, remove) a span open/close listener.

        The listener must provide ``span_opened(name, start_ms)`` and
        ``span_closed(name, start_ms, end_ms)``; the observability hub
        (:class:`repro.obs.ObservabilityHub`) implements this protocol to
        turn every clock span into a recorded hierarchical span.
        """
        self._span_listener = listener

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Attribute all time advanced inside the ``with`` block to ``name``.

        Spans nest; time inside an inner span is attributed to both the inner
        and the outer span, mirroring how the paper reports both per-operation
        and total-session latencies.
        """
        start = self._now_ms
        self._span_totals.setdefault(name, 0.0)
        self._span_stack.append(name)
        listener = self._span_listener
        if listener is not None:
            listener.span_opened(name, start)
        try:
            yield
        finally:
            self._span_stack.pop()
            self._span_log.append((name, start, self._now_ms))
            if listener is not None:
                listener.span_closed(name, start, self._now_ms)

    def span_totals(self) -> dict:
        """Mapping of span name to total milliseconds attributed to it."""
        return dict(self._span_totals)

    def span_log(self) -> List[Tuple[str, float, float]]:
        """Chronological list of completed spans as (name, start, end)."""
        return list(self._span_log)

    def reset_spans(self) -> None:
        """Forget accumulated span totals (the clock itself keeps running)."""
        self._span_totals.clear()
        self._span_log.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now_ms:.3f}ms)"
