"""Sharding seeded simulation runs across worker processes.

Simulation runs in this repository are pure functions of their seeds and
parameters, which makes them embarrassingly parallel: a fault-campaign
cell, a fleet sweep point, or a benchmark trial can execute in any
process and produce the identical record.  :func:`map_seeded` is the one
executor they share — it preserves input order, so callers that merge
results deterministically get **byte-identical output regardless of
worker count**, and that property is what the parallel-vs-serial tests
pin.

``workers <= 1`` (the default) runs inline in the calling process with
no multiprocessing import cost; anything the executor is asked to run
must be a module-level callable with picklable items.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def shard_groups(num_items: int, shard_size: int) -> List[Tuple[int, int]]:
    """Partition ``num_items`` into contiguous groups of ``shard_size``.

    Returns ``(index_base, count)`` pairs covering ``0..num_items-1`` in
    order; the last group absorbs the remainder.  This is the partition a
    sharded fleet run uses: each group becomes its own
    :class:`~repro.core.fleet.FlickerFleet` with ``index_base`` set, so
    machine ids and derived seeds stay globally numbered.  The partition
    depends only on ``shard_size`` — never on the worker count — so the
    merged results are byte-identical no matter how the groups are
    scheduled across processes.

    >>> shard_groups(10, 4)
    [(0, 4), (4, 4), (8, 2)]
    """
    if num_items < 1:
        raise ValueError("num_items must be >= 1")
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    return [(base, min(shard_size, num_items - base))
            for base in range(0, num_items, shard_size)]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker request: ``None``/``0`` means one per CPU."""
    if workers is None or workers == 0:
        import os

        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def map_seeded(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int = 1,
) -> List[R]:
    """``[fn(item) for item in items]``, optionally across processes.

    Results always come back in ``items`` order.  With ``workers > 1``
    the calls are sharded over a ``multiprocessing.Pool``; ``fn`` must be
    defined at module level (picklable) and each item must pickle.  The
    chunk size is pinned to 1 so scheduling differences between hosts
    cannot reorder side effects inside a worker — determinism comes from
    the ordered merge, not from scheduling luck.
    """
    workers = resolve_workers(workers)
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    import multiprocessing

    with multiprocessing.Pool(processes=min(workers, len(items))) as pool:
        return pool.map(fn, items, chunksize=1)
