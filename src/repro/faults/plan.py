"""Fault plans: declarative, seeded descriptions of what to inject.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec` entries plus the seed
it was generated from.  Plans are pure data — they can be serialized to a
JSON-friendly dict and rebuilt exactly, which is how a failing campaign
seed is replayed (``docs/FAULTS.md``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Tuple

from repro.errors import FaultPlanError
from repro.sim.rng import DeterministicRNG

#: Every fault kind the injector understands.
FAULT_KINDS = (
    "slb-bit-flip",    # flip one bit of the in-memory SLB before SKINIT measures it
    "tpm-transient",   # a TPM command fails once (retryable)
    "tpm-permanent",   # a TPM command fails every time (never retryable)
    "nv-corrupt",      # an NV write silently retains corrupted bits
    "dma-probe",       # a compromised peripheral DMA-reads the SLB mid-session
    "debug-probe",     # a hardware debugger reads the SLB mid-session
    "clock-skew",      # the platform oscillator runs fast/slow for the session
    "pal-exception",   # the PAL raises at its entry point
)

#: TPM commands a ``tpm-transient`` / ``tpm-permanent`` spec may target.
TPM_FAULT_OPS = (
    "seal",
    "unseal",
    "get_random",
    "pcr_extend",
    "quote",
    "nv_write",
    "nv_read",
)

#: Spec ``session`` value meaning "any session".
ANY_SESSION = -1

#: Spec ``machine`` value meaning "any machine" (the empty string, so
#: plans written before fleets existed deserialize unchanged).
ANY_MACHINE = ""


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``session`` selects the logical session index (0-based, counted per
    :meth:`FlickerPlatform.execute_image` call; retries of one session share
    its index) or :data:`ANY_SESSION`.  ``op`` narrows TPM-command faults to
    one command (empty = any).  ``count`` bounds how many times the fault
    fires (ignored for ``tpm-permanent``, which by definition never heals).
    ``magnitude`` parameterizes the kind: the bit index for corruptions,
    the skew percentage for ``clock-skew``.  ``machine`` addresses one
    fleet machine by id (:data:`ANY_MACHINE` = any machine — including
    single-machine platforms, which carry no machine id at all).
    """

    kind: str
    session: int = ANY_SESSION
    op: str = ""
    count: int = 1
    magnitude: int = 0
    machine: str = ANY_MACHINE

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}")
        if self.op and self.op not in TPM_FAULT_OPS:
            raise FaultPlanError(f"unknown TPM fault op {self.op!r}")
        if self.kind == "nv-corrupt" and self.op not in ("", "nv_write"):
            raise FaultPlanError("nv-corrupt only applies to nv_write")
        if self.session < ANY_SESSION:
            raise FaultPlanError(f"bad session index {self.session}")
        if self.count < 1:
            raise FaultPlanError("fault count must be >= 1")
        if self.kind == "clock-skew" and self.magnitude <= 0:
            raise FaultPlanError("clock-skew magnitude is a percentage > 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs, applied together to one platform run."""

    seed: int
    specs: Tuple[FaultSpec, ...]

    @classmethod
    def generate(
        cls,
        seed: int,
        max_faults: int = 3,
        max_sessions: int = 3,
    ) -> "FaultPlan":
        """Derive a plan deterministically from ``seed``.

        The same seed always yields the same plan (the generator forks a
        dedicated RNG stream, so plan generation never perturbs platform
        randomness).
        """
        rng = DeterministicRNG(seed).fork("fault-plan")
        specs = []
        for _ in range(rng.randint(1, max_faults)):
            kind = FAULT_KINDS[rng.randint(0, len(FAULT_KINDS) - 1)]
            session = rng.randint(0, max_sessions - 1)
            op = ""
            count = 1
            magnitude = 0
            if kind in ("tpm-transient", "tpm-permanent"):
                op = TPM_FAULT_OPS[rng.randint(0, len(TPM_FAULT_OPS) - 1)]
                if kind == "tpm-transient":
                    count = rng.randint(1, 2)
            elif kind == "nv-corrupt":
                op = "nv_write"
                magnitude = rng.randint(0, 1 << 16)
            elif kind == "slb-bit-flip":
                # Bit offsets land past the 4-byte SLB header so the image
                # stays parseable: the attack corrupts code, not framing.
                magnitude = rng.randint(0, 1 << 16)
            elif kind == "clock-skew":
                magnitude = rng.randint(50, 300)  # percent of nominal rate
            specs.append(
                FaultSpec(kind=kind, session=session, op=op, count=count,
                          magnitude=magnitude)
            )
        return cls(seed=seed, specs=tuple(specs))

    def for_machine(self, machine_id: str) -> "FaultPlan":
        """The sub-plan addressed to ``machine_id``.

        Keeps every spec that names that machine or any machine, so one
        campaign plan can be split across a fleet: install
        ``plan.for_machine(host.machine_id)`` on each host and only the
        addressed machines see their faults.
        """
        return FaultPlan(
            seed=self.seed,
            specs=tuple(s for s in self.specs
                        if s.machine in (ANY_MACHINE, machine_id)),
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-friendly encoding (inverse of :meth:`from_dict`)."""
        return {"seed": self.seed, "specs": [asdict(s) for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output; validates specs."""
        try:
            seed = int(data["seed"])
            specs = tuple(FaultSpec(**spec) for spec in data["specs"])
        except (KeyError, TypeError) as exc:
            raise FaultPlanError(f"malformed fault plan encoding: {exc}") from exc
        return cls(seed=seed, specs=specs)
