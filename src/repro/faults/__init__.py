"""Deterministic fault injection for the Flicker simulation.

Flicker's security argument is about what survives when the environment
misbehaves: a malicious OS, DMA-capable peripherals, a glitchy TPM, strike
damage to the SLB image itself.  This package turns those adversities into
a first-class, *seeded* instrument:

* :class:`~repro.faults.plan.FaultSpec` / :class:`~repro.faults.plan.FaultPlan`
  — a declarative, serializable description of which faults to inject where,
  generated deterministically from a single integer seed.
* :class:`~repro.faults.injector.FaultInjector` — hooks a plan into the
  platform's named injection points (``skinit.pre-measure``,
  ``tpm.command``, ``session.mid``, ``pal.exception``, ...).  Every fault
  it fires is emitted as a ``source="fault"`` trace event, so campaigns are
  replayable from the trace.
* :class:`~repro.faults.campaign.FaultCampaign` — sweeps N seeded plans
  across the paper's four applications and classifies each run's outcome
  (``ok`` / ``retried-ok`` / ``session-aborted`` / ``attestation-rejected``
  / ``secret-leaked`` — the last must always be zero).

See ``docs/FAULTS.md`` for the injection-point catalogue and usage.
"""

from repro.faults.injector import INJECTION_POINTS, FaultInjector
from repro.faults.plan import (
    ANY_MACHINE,
    ANY_SESSION,
    FAULT_KINDS,
    TPM_FAULT_OPS,
    FaultPlan,
    FaultSpec,
)

#: Campaign symbols are re-exported lazily (PEP 562) so that running
#: ``python -m repro.faults.campaign`` does not import the module twice.
_CAMPAIGN_EXPORTS = ("FaultCampaign", "OUTCOMES", "run_scenario")


def __getattr__(name):
    if name in _CAMPAIGN_EXPORTS:
        from repro.faults import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ANY_MACHINE",
    "ANY_SESSION",
    "FAULT_KINDS",
    "INJECTION_POINTS",
    "OUTCOMES",
    "TPM_FAULT_OPS",
    "FaultCampaign",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "run_scenario",
]
