"""Adversarial fault campaigns over the paper's four applications.

A campaign sweeps N seeded :class:`~repro.faults.plan.FaultPlan`\\ s across
fresh platforms running the CA, SSH, rootkit-detector, and distributed
workloads, and classifies each run into one outcome class:

``ok``
    The workload completed and verified despite (or without) faults.
``retried-ok``
    Same, but only after the platform's retry policy absorbed transient
    TPM faults.
``session-aborted``
    The platform failed *closed*: a session or quote died on a typed
    error after the OS was restored.  Availability lost, nothing leaked.
``attestation-rejected``
    The workload ran but a verifier refused the evidence (tampered SLB,
    stale state, bad credential) — the detection working as designed.
``secret-leaked``
    A mid-session hardware probe obtained protected PAL memory.  The
    paper's guarantees say this class must be **empty**; any occurrence
    is a simulation bug.

Reports are deterministic: the same seeds produce byte-identical JSON
(virtual time only, sorted keys), and any single seed can be replayed with
its full fault trace via :func:`replay` or ``--replay``.

Run from the command line::

    python -m repro.faults.campaign --smoke          # 50 seeds x 4 apps
    python -m repro.faults.campaign --seeds 10 --out report.json
    python -m repro.faults.campaign --replay 17 --app ca
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.apps.ca import CertificateAuthority, CertificateSigningRequest
from repro.apps.distributed import BOINCClient, BOINCServer
from repro.apps.rootkit_detector import RemoteAdministrator
from repro.apps.ssh_auth import PasswdEntry, SSHClient, SSHServer
from repro.core.session import FlickerPlatform
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import (
    AttestationError,
    FlickerError,
    HardwareError,
    TPMError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

#: Outcome classes, in report order.
OUTCOMES = ("ok", "retried-ok", "session-aborted", "attestation-rejected",
            "secret-leaked")

#: Application scenarios a campaign drives.
APPS = ("ca", "ssh", "rootkit", "distributed")

#: Platform seed shared by every scenario run — campaign variation comes
#: entirely from the fault plans, which keeps runs comparable.
PLATFORM_SEED = 1234

_NONCE = b"\x5c" * 20


def _fresh_platform() -> FlickerPlatform:
    # Default (512-bit) functional keys: the smallest size PKCS1/SHA-1
    # signatures and the secure-channel padding both fit in.  Repeated
    # construction is cheap — identical seeds hit the RSA keygen memo cache.
    return FlickerPlatform(seed=PLATFORM_SEED)


# -- scenario drivers --------------------------------------------------------
#
# Each driver runs one workload end to end and returns "ok" or
# "attestation-rejected"; typed errors propagate to run_scenario, which
# classifies them.


def _drive_ca(platform: FlickerPlatform) -> str:
    ca = CertificateAuthority(platform)
    ca.initialize()  # session 0: keygen
    subject = generate_rsa_keypair(256, platform.machine.rng.fork("ca-subject"))
    csr = CertificateSigningRequest(subject="host.example.com",
                                    public_key=subject.public)
    certificate = ca.sign(csr)  # session 1: unseal, policy, sign
    if certificate is None or not certificate.verify(ca.public_key):
        return "attestation-rejected"
    attestation = platform.attest(ca.last_session.nonce)
    report = platform.verifier().verify(
        attestation, ca.last_session.image, ca.last_session.nonce
    )
    return "ok" if report.ok else "attestation-rejected"


def _drive_ssh(platform: FlickerPlatform) -> str:
    server = SSHServer(platform)
    server.add_user(PasswdEntry.create("alice", b"correct horse", b"f11cker0"))
    client = SSHClient(platform)
    # Session 0: channel setup (attested inside); session 1: login.
    outcome = client.connect_and_login(server, "alice", b"correct horse")
    return "ok" if outcome.authenticated else "attestation-rejected"


def _drive_rootkit(platform: FlickerPlatform) -> str:
    admin = RemoteAdministrator(platform)
    report = admin.run_detection_query()  # session 0 + quote
    if not report.attestation_valid:
        return "attestation-rejected"
    return "ok" if report.kernel_clean else "attestation-rejected"


def _drive_distributed(platform: FlickerPlatform) -> str:
    server = BOINCServer(n=15015, range_per_unit=400)
    client = BOINCClient(platform)
    unit = server.issue_unit()
    progress = client.start_unit(unit)  # session 0: init
    result = None
    while not progress.done:  # sessions 1..k: work slices
        progress, result = client.work_slice(progress, slice_ms=1000,
                                             nonce=_NONCE)
    attestation = platform.attest(_NONCE, result)
    accepted = server.accept_result(platform, unit, progress, result,
                                    attestation, _NONCE)
    return "ok" if accepted else "attestation-rejected"


DRIVERS = {
    "ca": _drive_ca,
    "ssh": _drive_ssh,
    "rootkit": _drive_rootkit,
    "distributed": _drive_distributed,
}


# -- running one scenario ----------------------------------------------------


def run_scenario(app: str, plan: FaultPlan, capture_trace: bool = False,
                 registry=None) -> Dict:
    """Run one app under one fault plan; returns a JSON-friendly record.

    With a :class:`repro.obs.MetricsRegistry` as ``registry``, the run's
    outcome, fired faults, and blocked probes are folded into campaign
    counters (the record itself is unchanged, so reports stay
    byte-compatible)."""
    if app not in DRIVERS:
        raise ValueError(f"unknown app {app!r} (choose from {APPS})")
    platform = _fresh_platform()
    injector = FaultInjector(plan).install(platform)
    try:
        outcome = DRIVERS[app](platform)
    except AttestationError:
        outcome = "attestation-rejected"
    except (FlickerError, TPMError, HardwareError):
        # Typed failure after the OS was restored: the platform failed
        # closed.  (Anything untyped propagates — that is a repro bug.)
        outcome = "session-aborted"
    if injector.leaks:
        outcome = "secret-leaked"
    trace = platform.machine.trace
    retries = len(trace.events(kind="session-retry")) + len(
        trace.events(kind="attest-retry")
    )
    if outcome == "ok" and retries:
        outcome = "retried-ok"
    record = {
        "app": app,
        "seed": plan.seed,
        "plan": plan.to_dict(),
        "outcome": outcome,
        "faults_fired": injector.fired,
        "retries": retries,
        "probes_blocked": sum(1 for p in injector.probe_results if p.blocked),
        "leaks": injector.leaks,
    }
    if capture_trace:
        record["fault_trace"] = [
            {"time_ms": e.time_ms, "kind": e.kind, "detail": dict(e.detail)}
            for e in trace.events(source="fault")
        ]
    if registry is not None:
        fold_record_into_registry(record, registry)
    return record


def fold_record_into_registry(record: Dict, registry) -> None:
    """Fold one scenario record into campaign counters.

    A pure function of the record, so folding can happen in the worker
    that ran the cell *or* after the fact in the parent process — the
    parallel executor relies on this to rebuild the exact registry a
    serial run would have produced.
    """
    registry.counter(
        "campaign_outcomes_total", "Campaign cells per outcome class"
    ).inc(app=record["app"], outcome=record["outcome"])
    for fired in record["faults_fired"]:
        registry.counter(
            "campaign_faults_fired_total", "Injected faults that fired"
        ).inc(kind=fired["kind"])
    if record["probes_blocked"]:
        registry.counter(
            "campaign_probes_blocked_total", "Hardware probes the DEV/CPU blocked"
        ).inc(record["probes_blocked"], app=record["app"])
    if record["retries"]:
        registry.counter(
            "campaign_retries_total", "Retries absorbed across the campaign"
        ).inc(record["retries"], app=record["app"])


def replay(seed: int, app: str, max_faults: int = 3,
           max_sessions: int = 3) -> Dict:
    """Re-run a single campaign cell with its full fault trace attached.

    Because plans are pure functions of their seed and platforms are
    seeded identically, the replayed record (and its trace) is exactly
    what the campaign observed."""
    plan = FaultPlan.generate(seed, max_faults=max_faults,
                              max_sessions=max_sessions)
    return run_scenario(app, plan, capture_trace=True)


# -- the campaign ------------------------------------------------------------


def _run_cell(cell) -> Dict:
    """One (seed, app) campaign cell — module-level so worker processes
    can unpickle it; regenerates the plan from the seed (plans are pure
    functions of their seed, so shipping the seed ships the plan)."""
    seed, app, max_faults, max_sessions = cell
    plan = FaultPlan.generate(seed, max_faults=max_faults,
                              max_sessions=max_sessions)
    return run_scenario(app, plan)


class FaultCampaign:
    """Sweep seeded fault plans across the application scenarios.

    ``workers`` opts into the multiprocessing executor: the seeded cells
    are sharded across that many worker processes (``0``/``None`` means
    one per CPU) and merged back in sweep order, so the report — and the
    metrics registry rebuilt from it — is **byte-identical** to a serial
    run.  Each cell is an independent seeded simulation; there is no
    cross-cell state to lose by sharding.
    """

    def __init__(
        self,
        seeds: Sequence[int],
        apps: Sequence[str] = APPS,
        max_faults: int = 3,
        max_sessions: int = 3,
        workers: int = 1,
    ) -> None:
        self.seeds = list(seeds)
        self.apps = list(apps)
        self.max_faults = max_faults
        self.max_sessions = max_sessions
        self.workers = workers
        # Campaign-level outcome/fault/probe counters, populated by run().
        # Deterministic like the report: same seeds, same snapshot.
        from repro.obs import MetricsRegistry

        self.registry = MetricsRegistry()

    def run(self) -> Dict:
        """Run every (seed, app) cell; returns the deterministic report."""
        from repro.sim.parallel import map_seeded

        cells = [(seed, app, self.max_faults, self.max_sessions)
                 for seed in self.seeds for app in self.apps]
        results = map_seeded(_run_cell, cells, workers=self.workers)
        for record in results:
            fold_record_into_registry(record, self.registry)
        counts = {outcome: 0 for outcome in OUTCOMES}
        for record in results:
            counts[record["outcome"]] += 1
        return {
            "campaign": {
                "seeds": self.seeds,
                "apps": self.apps,
                "max_faults": self.max_faults,
                "max_sessions": self.max_sessions,
                "platform_seed": PLATFORM_SEED,
            },
            "results": results,
            "summary": {
                "runs": len(results),
                "outcomes": counts,
                "secret_leaked": counts["secret-leaked"],
            },
        }


def report_json(report: Dict) -> str:
    """Canonical JSON encoding: byte-identical for identical campaigns."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


# -- CLI ---------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.campaign",
        description="Run a deterministic fault-injection campaign.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="run the standard 50-seed smoke campaign")
    parser.add_argument("--seeds", type=int, default=10,
                        help="number of seeded plans to sweep (default 10)")
    parser.add_argument("--apps", default=",".join(APPS),
                        help="comma-separated app subset (default: all)")
    parser.add_argument("--replay", type=int, metavar="SEED",
                        help="replay one seed (with --app) and print its "
                             "record plus fault trace")
    parser.add_argument("--app", default="ca",
                        help="app for --replay (default ca)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="shard seeded cells across N worker processes "
                             "(0 = one per CPU); the merged report is "
                             "byte-identical to a serial run (default 1)")
    parser.add_argument("--out", help="write the JSON report to this file")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write the campaign's metrics snapshot "
                             "(outcome/fault/probe counters) as JSONL")
    args = parser.parse_args(argv)

    if args.replay is not None:
        if args.app not in DRIVERS:
            parser.error(f"unknown app {args.app!r} (choose from {APPS})")
        text = report_json(replay(args.replay, args.app))
    else:
        nseeds = 50 if args.smoke else args.seeds
        apps = tuple(a for a in args.apps.split(",") if a)
        unknown = [a for a in apps if a not in DRIVERS]
        if unknown:
            parser.error(f"unknown app(s) {unknown} (choose from {APPS})")
        campaign = FaultCampaign(seeds=range(nseeds), apps=apps,
                                 workers=args.workers)
        report = campaign.run()
        text = report_json(report)
        if args.metrics_out:
            from repro.obs import metrics_to_jsonl

            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(metrics_to_jsonl(campaign.registry))
        leaked = report["summary"]["secret_leaked"]
        print(f"{report['summary']['runs']} runs: "
              + ", ".join(f"{k}={v}" for k, v in
                          report["summary"]["outcomes"].items()),
              file=sys.stderr)
        if leaked:
            print("SECRET LEAK DETECTED — simulation invariant violated",
                  file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text, end="")
    if args.replay is None and report["summary"]["secret_leaked"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
