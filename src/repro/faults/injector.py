"""The fault injector: wires a :class:`FaultPlan` into a live platform.

Components signal **named injection points** through
:meth:`Machine.fire_fault`; the injector decides — deterministically, from
the plan alone — whether anything fires there.  Points and their fault
kinds:

================== ========================================================
point              armed kinds
================== ========================================================
session.begin      ``clock-skew`` (skew applies for the whole session)
skinit.pre-measure ``slb-bit-flip``
tpm.command        ``tpm-transient`` / ``tpm-permanent`` / ``nv-corrupt``
session.mid        ``dma-probe`` / ``debug-probe`` (mid-PAL hardware probes)
pal.exception      ``pal-exception``
pal.enter/exit,    (bookkeeping only — they gate where TPM faults may
session.end        strike, see below)
================== ========================================================

TPM-command faults are gated to strike only *inside the PAL* or *outside
any session* (e.g. during attestation quotes).  The SLB Core's own
bookkeeping commands — the slb-init extend, the closing io/sentinel
extends — are exempt: a fault there would model broken hardware wedging
the platform mid-suspend, which the paper's software-visible fault model
(and this simulation's "OS always resumes" invariant) excludes.

Every fault actually fired is recorded on the injector **and** emitted as
a ``source="fault"`` trace event, making campaign runs replayable from the
trace alone.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.crypto.sha1 import sha1_cached as sha1
from repro.errors import FaultPlanError, PALRuntimeError, TPMPermanentError, TPMTransientError
from repro.faults.plan import ANY_MACHINE, ANY_SESSION, FaultPlan, FaultSpec
from repro.osim.attacker import Attacker, ProbeResult
from repro.tpm.nvram import flip_bit

#: Injection points components may fire (documented in docs/FAULTS.md).
INJECTION_POINTS = (
    "session.begin",
    "session.end",
    "skinit.pre-measure",
    "tpm.command",
    "pal.enter",
    "session.mid",
    "pal.exception",
    "pal.exit",
)


class FaultInjector:
    """Executes a fault plan against the machine's injection points."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: Chronological record of every fault fired (dicts; JSON-friendly).
        self.fired: List[Dict[str, Any]] = []
        #: Hardware probe outcomes gathered mid-session.
        self.probe_results: List[ProbeResult] = []
        #: Probes that *obtained* protected data — must stay empty.
        self.leaks: List[Dict[str, Any]] = []
        self._remaining = {i: spec.count for i, spec in enumerate(plan.specs)}
        self._session_index = -1
        self._in_session = False
        self._in_pal = False
        self._skewed = False
        self._platform = None
        self._machine_id: Optional[str] = None
        self._attacker: Optional[Attacker] = None

    # -- wiring ---------------------------------------------------------------

    def install(self, platform) -> "FaultInjector":
        """Attach to a :class:`~repro.core.session.FlickerPlatform`.

        On a fleet machine (one carrying a machine id), specs addressed
        to *other* machines never arm here — a single plan can drive a
        whole fleet with each injector seeing only its own faults.
        """
        self._platform = platform
        self._machine_id = platform.machine.machine_id
        platform.machine.fault_injector = self
        return self

    @property
    def session_index(self) -> int:
        """Logical index of the current (or most recent) session."""
        return self._session_index

    # -- spec matching --------------------------------------------------------

    def _armed(self, kinds, op: str = "") -> List[int]:
        """Indices of specs armed for the current session and ``op``."""
        hits = []
        for i, spec in enumerate(self.plan.specs):
            if spec.kind not in kinds:
                continue
            if spec.session not in (ANY_SESSION, self._session_index):
                continue
            if spec.machine not in (ANY_MACHINE, self._machine_id):
                continue
            if spec.op and spec.op != op:
                continue
            # Permanent faults never heal; everything else consumes count.
            if spec.kind != "tpm-permanent" and self._remaining[i] <= 0:
                continue
            hits.append(i)
        return hits

    def _record(self, index: int, point: str, machine, **detail) -> FaultSpec:
        spec = self.plan.specs[index]
        if spec.kind != "tpm-permanent":
            self._remaining[index] -= 1
        entry = {
            "kind": spec.kind,
            "point": point,
            "session": self._session_index,
            "spec": index,
            **detail,
        }
        self.fired.append(entry)
        machine.trace.emit(machine.clock.now(), "fault", spec.kind,
                           point=point, session=self._session_index,
                           spec=index, **detail)
        return spec

    # -- dispatch -------------------------------------------------------------

    def fire(self, point: str, machine, **context: Any) -> Any:
        """Handle one injection point; called by :meth:`Machine.fire_fault`."""
        if point == "session.begin":
            self._session_index += 1
            self._in_session = True
            for i in self._armed(("clock-skew",)):
                spec = self._record(i, point, machine,
                                    percent=self.plan.specs[i].magnitude)
                machine.clock.set_skew(spec.magnitude / 100.0)
                self._skewed = True
            return None
        if point == "session.end":
            self._in_session = False
            self._in_pal = False
            if self._skewed:
                machine.clock.set_skew(1.0)
                self._skewed = False
            return None
        if point == "pal.enter":
            self._in_pal = True
            return None
        if point == "pal.exit":
            self._in_pal = False
            return None
        if point == "skinit.pre-measure":
            return self._fire_slb_flip(point, machine, **context)
        if point == "tpm.command":
            return self._fire_tpm(point, machine, **context)
        if point == "session.mid":
            return self._fire_probes(point, machine, **context)
        if point == "pal.exception":
            for i in self._armed(("pal-exception",)):
                self._record(i, point, machine)
                raise PALRuntimeError("injected fault: PAL exception")
            return None
        raise FaultPlanError(f"unknown injection point {point!r}")

    # -- per-point handlers ---------------------------------------------------

    def _fire_slb_flip(self, point: str, machine, slb_base: int, length: int):
        for i in self._armed(("slb-bit-flip",)):
            spec = self.plan.specs[i]
            original = machine.memory.read(slb_base, length)
            entry_routine = machine.lookup_executable(sha1(original))
            # Keep the strike past the 4-byte header: the fault model is
            # corrupted *code*, not an image the hardware refuses to parse.
            bit = 32 + spec.magnitude % (length * 8 - 32)
            tampered = flip_bit(original, bit)
            machine.memory.write(slb_base, tampered)
            if entry_routine is not None:
                # Tampered code still *runs* (hardware executes whatever
                # bytes are present); PCR 17 records its true measurement.
                machine.register_executable(tampered, entry_routine)
            self._record(i, point, machine, bit=bit)
        return None

    def _fire_tpm(self, point: str, machine, op: str, **context: Any):
        if self._in_session and not self._in_pal:
            return None  # SLB Core bookkeeping commands are exempt (above)
        for i in self._armed(("tpm-transient", "tpm-permanent", "nv-corrupt"), op=op):
            spec = self.plan.specs[i]
            if spec.kind == "nv-corrupt":
                if op != "nv_write":
                    continue
                self._record(i, point, machine, op=op, bit=spec.magnitude)
                return flip_bit(context["data"], spec.magnitude)
            self._record(i, point, machine, op=op)
            if spec.kind == "tpm-transient":
                raise TPMTransientError(f"injected transient fault on {op}")
            raise TPMPermanentError(f"injected permanent fault on {op}")
        return None

    def _fire_probes(self, point: str, machine, layout=None, **context: Any):
        armed = self._armed(("dma-probe", "debug-probe"))
        if not armed or layout is None:
            return None
        if self._attacker is None:
            self._attacker = Attacker(self._platform.kernel)
        for i in armed:
            spec = self.plan.specs[i]
            if spec.kind == "dma-probe":
                result = self._attacker.dma_probe_checked(layout.base, 64)
            else:
                result = self._attacker.debugger_probe_checked(layout.base, 64)
            self.probe_results.append(result)
            self._record(i, point, machine, vector=result.vector,
                         blocked=result.blocked)
            if not result.blocked:
                # The probe read live PAL memory mid-session: that is a
                # secret leak, the outcome class that must never occur.
                self.leaks.append({
                    "kind": spec.kind,
                    "session": self._session_index,
                    "addr": result.addr,
                    "length": result.length,
                })
        return None
