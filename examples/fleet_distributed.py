#!/usr/bin/env python3
"""A whole Flicker fleet computing concurrently (paper §6.2 at scale).

Four client machines — each with its own TPM, AIK, and Privacy CA — run
the distributed-factoring workload on one discrete-event schedule while
the server host dispatches units over per-machine network links and
verifies each attestation as it arrives.  Machines interleave in virtual
time, so the fleet finishes in roughly ONE machine's virtual makespan
instead of four.

Run:  python examples/fleet_distributed.py
"""

from repro.apps.distributed import FleetProject
from repro.core import FlickerFleet

MACHINES = 4


def main() -> None:
    print(f"[1] assemble a {MACHINES}-machine fleet plus a verifier host")
    fleet = FlickerFleet(num_machines=MACHINES, seed=2008, observability=True)
    print(f"    machines: {', '.join(h.machine_id for h in fleet.hosts)}")

    print("\n[2] run the factoring project concurrently")
    project = FleetProject(
        fleet, n=3 * 5 * 7 * 11 * 13 * 1_000_003,
        units_per_client=1, slice_ms=2000.0, range_per_unit=400,
    )
    report = project.run()
    print(f"    units accepted: {report.units_accepted}/{report.units_issued}")
    assert report.units_accepted == MACHINES

    print("\n[3] concurrency, visible in the clocks")
    slowest = max(m.busy_ms for m in report.per_machine)
    print(f"    fleet makespan:     {report.makespan_ms:9.1f} virtual ms")
    print(f"    slowest machine:    {slowest:9.1f} virtual ms of work")
    print(f"    serial sum (avoided): {report.total_busy_ms:7.1f} virtual ms")
    assert report.makespan_ms < 1.1 * slowest
    for m in report.per_machine:
        print(f"      {m.machine_id}: {m.sessions} sessions, "
              f"utilization {m.utilization:.3f}")

    print("\n[4] aggregate throughput (the fleet's scaling figure)")
    print(f"    {report.total_sessions} sessions / "
          f"{report.makespan_ms / 1000.0:.2f} virtual s = "
          f"{report.sessions_per_virtual_second:.2f} sessions/vsec")
    print(f"    network: {report.network_messages} messages, "
          f"{report.network_bytes} bytes")

    print("\n[5] one Perfetto track per machine")
    from repro.obs import export_fleet_chrome_trace

    trace = export_fleet_chrome_trace(fleet.hubs(), fleet.traces())
    print(f"    fleet Chrome trace: {len(trace)} bytes "
          f"(write to a file and load in ui.perfetto.dev)")
    print("    same seed, same fleet → byte-identical trace, every run.")


if __name__ == "__main__":
    main()
