#!/usr/bin/env python3
"""Remote rootkit detection (paper §6.1): a corporate administrator checks
employee machines before admitting them to the VPN.

The script runs three acts:
  1. query a clean machine — the attested kernel hash matches known-good;
  2. install a syscall-table rootkit and query again — detected;
  3. have the *malicious OS* try to forge a clean answer — the attestation
     fails, so the lie is caught too.

Run:  python examples/rootkit_detection.py
"""

from dataclasses import replace

from repro.apps.rootkit_detector import RemoteAdministrator, describe_kernel_regions
from repro.core import FlickerPlatform
from repro.osim import Attacker


def main() -> None:
    platform = FlickerPlatform()
    admin = RemoteAdministrator(platform)

    # --- Act 1: clean machine ---------------------------------------------
    report = admin.run_detection_query()
    print("[1] clean machine")
    print(f"    attestation valid: {report.attestation_valid}")
    print(f"    kernel hash:       {report.kernel_hash.hex()[:24]}…")
    print(f"    matches known-good: {report.kernel_clean}")
    print(f"    query latency:      {report.query_latency_ms:.1f} ms "
          f"(paper: ~1022.7 ms)")
    assert report.kernel_clean

    # --- Act 2: rootkit installed -------------------------------------------
    attacker = Attacker(platform.kernel)
    hook_addr = attacker.hook_syscall(59)  # hook execve
    print(f"\n[2] attacker hooks syscall 59 → {hook_addr:#x}")
    report = admin.run_detection_query()
    print(f"    attestation valid: {report.attestation_valid}")
    print(f"    compromise detected: {report.compromised}")
    assert report.compromised

    # --- Act 3: the OS lies -------------------------------------------------
    print("\n[3] malicious OS forges a 'clean' answer")
    nonce = admin._fresh_nonce()
    session = platform.execute_pal(
        admin.pal,
        inputs=describe_kernel_regions(platform.kernel),
        nonce=nonce,
        optimize=False,
    )
    honest = platform.attest(nonce, session)
    forged = replace(honest, outputs=admin.known_good_hash())
    verdict = platform.verifier().verify(
        forged, session.image, nonce, pal_extends=[forged.outputs]
    )
    print(f"    forged attestation accepted: {verdict.ok}")
    for failure in verdict.failures:
        print(f"      - {failure}")
    assert not verdict.ok

    print("\nConclusion: the administrator trusts the detector PAL "
          "(a few hundred lines), not the million-line OS.")


if __name__ == "__main__":
    main()
