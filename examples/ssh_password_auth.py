#!/usr/bin/env python3
"""SSH password authentication with a minimal-TCB password path (§6.3.1).

Demonstrates the full Figure 7 protocol: the setup PAL generates a channel
keypair under Flicker protection, the client verifies the attestation
before encrypting the password, and the login PAL alone ever sees the
cleartext — which this script proves by sweeping all of physical memory
and the network log afterwards.

Run:  python examples/ssh_password_auth.py
"""

from repro.apps.ssh_auth import PasswdEntry, SSHClient, SSHServer
from repro.core import FlickerPlatform
from repro.osim import Attacker

PASSWORD = b"correct horse battery"


def main() -> None:
    platform = FlickerPlatform()
    server = SSHServer(platform)
    server.add_user(PasswdEntry.create("alice", PASSWORD, b"fLiCkEr1"))
    client = SSHClient(platform)

    print("[1] alice logs in with the correct password")
    outcome = client.connect_and_login(server, "alice", PASSWORD)
    print(f"    authenticated:           {outcome.authenticated}")
    print(f"    time to password prompt: {outcome.time_to_prompt_ms:.0f} ms "
          f"(paper: ~1221 ms; unmodified sshd: ~210 ms)")
    print(f"    time after entry:        {outcome.time_after_entry_ms:.0f} ms "
          f"(paper: ~940 ms; unmodified sshd: ~10 ms)")
    assert outcome.authenticated

    print("\n[2] a wrong password is rejected")
    outcome = client.connect_and_login(server, "alice", b"wrong password!")
    print(f"    authenticated: {outcome.authenticated}")
    assert not outcome.authenticated

    print("\n[3] forensic sweep by a ring-0 adversary after the fact")
    attacker = Attacker(platform.kernel)
    memory_hits = attacker.scan_memory_for(PASSWORD)
    print(f"    cleartext password in RAM:      {len(memory_hits)} hits")
    wire_hits = sum(
        1 for _, _, payload in platform.network.messages()
        if isinstance(payload, bytes) and PASSWORD in payload
    )
    print(f"    cleartext password on the wire: {wire_hits} messages")
    assert memory_hits == [] and wire_hits == 0

    print("\n[4] what the server's password file actually stores")
    entry = server.passwd["alice"]
    print(f"    /etc/passwd: alice:{entry.hashed}")

    print("\nConclusion: even a fully compromised server OS never sees "
          "alice's password — it exists decrypted only inside the login "
          "PAL, and the SLB Core erases it before the OS resumes.")


if __name__ == "__main__":
    main()
