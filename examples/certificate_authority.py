#!/usr/bin/env python3
"""A Flicker-protected certificate authority (paper §6.3.2).

The CA's RSA signing key is generated inside a PAL and sealed to it; a
compromised server can submit CSRs but can never extract the key.  The
in-PAL policy filters malicious requests and the sealed certificate
database logs every decision.

Run:  python examples/certificate_authority.py
"""

from repro.apps.ca import (
    CertificateAuthority,
    CertificateSigningRequest,
    SigningPolicy,
)
from repro.core import FlickerPlatform
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import TPMPolicyError
from repro.sim.rng import DeterministicRNG
from repro.tpm.structures import SealedBlob


def main() -> None:
    platform = FlickerPlatform()
    policy = SigningPolicy(
        allowed_suffixes=(".corp.example",),
        denied_subjects=("legacy.corp.example",),
        max_certificates=100,
    )
    ca = CertificateAuthority(platform, policy=policy)

    print("[1] initialize: keygen PAL generates and seals the signing key")
    public_key = ca.initialize()
    print(f"    CA public key fingerprint: {public_key.fingerprint().hex()[:24]}…")
    print(f"    keygen session: {ca.last_session.total_ms:.1f} ms "
          f"(paper Fig. 9(a) analogue: ~217 ms)")

    print("\n[2] issue certificates through the signing PAL")
    subject_keys = generate_rsa_keypair(512, DeterministicRNG(99))
    for subject in ("www.corp.example", "mail.corp.example"):
        clock_before = platform.machine.clock.now()
        cert = ca.sign(CertificateSigningRequest(subject, subject_keys.public))
        elapsed = platform.machine.clock.now() - clock_before
        print(f"    issued serial {cert.serial} for {subject!r} "
              f"in {elapsed:.1f} ms (paper: ~906 ms)")
        assert cert.verify(public_key)

    print("\n[3] the in-PAL policy refuses bad requests")
    for subject in ("evil.attacker.net", "legacy.corp.example"):
        cert = ca.sign(CertificateSigningRequest(subject, subject_keys.public))
        print(f"    {subject!r}: {'ISSUED (!!)' if cert else 'DENIED'}")
        assert cert is None

    print("\n[4] the compromised OS tries to steal the sealed signing key")
    try:
        platform.tqd.driver.unseal(SealedBlob.decode(ca._sealed_state))
        print("    unseal succeeded (!!)")
    except TPMPolicyError as exc:
        print(f"    TPM refused: {exc}")

    print("\nConclusion: compromise costs certificate revocations, not a "
          "CA key rollover — the key never leaves Flicker sessions.")


if __name__ == "__main__":
    main()
