#!/usr/bin/env python3
"""Trustworthy distributed computing without replication (paper §6.2).

A BOINC-style factoring project hands work units to an untrusted client.
The client computes inside Flicker sessions whose inter-session state is
HMAC-protected under a TPM-sealed key; the final result is extended into
PCR 17 and attested, so the server accepts one attested execution instead
of three redundant ones.

Run:  python examples/distributed_computing.py
"""

from repro.apps.distributed import (
    BOINCClient,
    BOINCServer,
    ClientProgress,
    FactoringState,
    ReplicationScheme,
    flicker_efficiency,
)
from repro.core import FlickerPlatform
from repro.errors import PALRuntimeError

NONCE = b"\x11" * 20


def main() -> None:
    platform = FlickerPlatform()
    server = BOINCServer(n=3 * 5 * 7 * 11 * 13 * 1_000_003, range_per_unit=500)
    client = BOINCClient(platform)

    print("[1] the client works a unit across multiple short sessions")
    unit = server.issue_unit()
    progress = client.start_unit(unit)
    sessions = 1
    result = None
    while not progress.done:
        progress, result = client.work_slice(progress, slice_ms=1.0, nonce=NONCE)
        sessions += 1
    print(f"    unit {unit.unit_id}: divisors {unit.start}..{unit.end} "
          f"over {sessions} sessions")
    print(f"    factors found: {progress.state.found}")

    print("\n[2] the server verifies the attested result")
    attestation = platform.attest(NONCE, result)
    accepted = server.accept_result(platform, unit, progress, result, attestation, NONCE)
    print(f"    accepted: {accepted}")
    assert accepted

    print("\n[3] a cheating client edits the state to skip the work")
    doctored = FactoringState(
        unit_id=unit.unit_id, n=server.n,
        cursor=unit.end, end=unit.end, found=(),
    )
    forged = ClientProgress(
        sealed_key=progress.sealed_key,
        state_bytes=doctored.encode(),
        mac=progress.mac,
    )
    try:
        client.work_slice(forged, slice_ms=1.0)
        print("    tampered state accepted (!!)")
    except PALRuntimeError as exc:
        print(f"    PAL refused: {exc}")

    print("\n[4] why this beats replication (Figure 8)")
    overhead_ms = 912.6  # SKINIT + Unseal per session (Table 4)
    print(f"    per-session Flicker overhead: {overhead_ms:.1f} ms")
    print("    latency   Flicker eff.   3-way   5-way   7-way")
    for latency_s in (1, 2, 4, 8):
        eff = flicker_efficiency(latency_s * 1000.0, overhead_ms)
        print(f"      {latency_s} s      {eff:6.2f}       "
              f"{ReplicationScheme(3).efficiency:.2f}    "
              f"{ReplicationScheme(5).efficiency:.2f}    "
              f"{ReplicationScheme(7).efficiency:.2f}")
    print("    → beyond ~1.4 s sessions, one attested client out-produces "
          "three replicas.")


if __name__ == "__main__":
    main()
