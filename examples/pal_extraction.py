#!/usr/bin/env python3
"""The PAL extraction tool (paper §5.2): slicing sensitive logic out of a
larger application.

The paper's tool uses CIL on C programs; the reproduction's equivalent
works on Python source with the same workflow: point it at a target
function, get back a standalone program containing the target's
call-graph closure, plus a report of the calls that must be eliminated or
replaced with Flicker modules before the code can become a PAL.

Run:  python examples/pal_extraction.py
"""

import textwrap

from repro.core.automation import extract_pal_source

# A (condensed) web application with one security-sensitive corner.
WEB_APP = textwrap.dedent(
    '''
    import socket

    SALT_LENGTH = 8
    ROUNDS = 1000

    def parse_request(raw):
        print("parsing", raw)
        return raw.split(b" ")

    def render_page(user):
        return "<html>" + user + "</html>"

    def strengthen(digest, password):
        for _ in range(ROUNDS):
            digest = hash_once(digest + password)
        return digest

    def hash_once(data):
        return bytes(reversed(data))  # stand-in primitive

    def check_password(stored, password, salt):
        candidate = strengthen(hash_once(salt + password), password)
        return candidate == stored

    def handle_login(request):
        print("login attempt")
        user, password = parse_request(request)[:2]
        return check_password(b"...", password, b"salt" * 2)
    '''
)


def main() -> None:
    print("[1] extract the password check (the security-sensitive core)")
    result = extract_pal_source(WEB_APP, "check_password")
    print(f"    target:    {result.target}")
    print(f"    included:  {', '.join(result.included)}")
    print(f"    constants: {', '.join(result.constants)}")
    print(f"    clean:     {result.clean}")
    assert result.clean
    assert "parse_request" not in result.included  # untrusted plumbing stays out
    assert "render_page" not in result.included

    print("\n    standalone program:")
    for line in result.standalone_source.splitlines():
        print("      " + line)

    print("\n[2] extracting a function with untrusted dependencies")
    noisy = extract_pal_source(WEB_APP, "handle_login")
    print(f"    included: {', '.join(noisy.included)}")
    print("    disallowed dependencies the programmer must fix:")
    for name, guidance in noisy.disallowed.items():
        print(f"      {name}: {guidance}")
    assert not noisy.clean

    print("\nConclusion: the tool automates the §5.2 workflow — carve out "
          "the sensitive closure, and be told exactly which library calls "
          "to eliminate or replace with Flicker modules.")


if __name__ == "__main__":
    main()
