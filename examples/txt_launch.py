#!/usr/bin/env python3
"""Flicker over Intel TXT (paper §2.4: "Intel's TXT technology functions
analogously").

Runs the same PAL programming model through GETSEC[SENTER] instead of
SKINIT: the chipset authenticates a SINIT ACM, the ACM launches the MLE
(our SLB), and the PAL's identity lands in *two* PCRs — 17 (ACM) and 18
(MLE) — which both the seal policy and the verifier account for.

Run:  python examples/txt_launch.py
"""

from repro.core import FlickerPlatform, PAL
from repro.errors import TPMPolicyError
from repro.tpm.structures import SealedBlob


class TxtVaultPAL(PAL):
    """A tiny secret vault: seal on command 0, unseal on command 1."""

    name = "txt-vault"
    modules = ("tpm_utils",)

    def run(self, ctx):
        if ctx.inputs[0] == 0:
            blob = ctx.tpm.seal_to_policy(ctx.inputs[1:], ctx.self_seal_policy)
            ctx.write_output(blob.encode())
        else:
            ctx.write_output(ctx.tpm.unseal(SealedBlob.decode(ctx.inputs[1:])))


def main() -> None:
    platform = FlickerPlatform(launch="txt")
    print(f"[1] platform launch technology: {platform.launch.upper()}")
    print(f"    SINIT ACM measurement: {platform.acm.measurement.hex()[:24]}…")

    nonce = b"\x0a" * 20
    session = platform.execute_pal(
        TxtVaultPAL(), inputs=b"\x00" + b"the launch codes", nonce=nonce
    )
    print("\n[2] session ran via SENTER")
    senter_events = platform.machine.trace.events(kind="senter")
    print(f"    SENTER events in trace: {len(senter_events)}")
    print(f"    PCR 17 (ACM chain + session record): "
          f"{platform.machine.tpm.pcrs.read(17).hex()[:24]}…")
    print(f"    PCR 18 (MLE identity):               "
          f"{platform.machine.tpm.pcrs.read(18).hex()[:24]}…")

    print("\n[3] two-register attestation")
    attestation = platform.attest(nonce, session)
    report = platform.verifier().verify_txt(
        attestation, session.image, platform.acm.measurement, nonce
    )
    print(f"    verify_txt: {'PASSED' if report.ok else 'FAILED'} {report.failures}")
    assert report.ok

    print("\n[4] sealed storage binds to BOTH registers")
    reopened = platform.execute_pal(TxtVaultPAL(), inputs=b"\x01" + session.outputs)
    print(f"    same PAL, next session: {reopened.outputs!r}")
    try:
        platform.tqd.driver.unseal(SealedBlob.decode(session.outputs))
        print("    OS unseal: succeeded (!!)")
    except TPMPolicyError:
        print("    OS unseal: refused (PCR policy)")

    print("\nConclusion: the same PAL code, sessions, and verification "
          "flow run unchanged over Intel's late launch — with the "
          "two-register identity the TXT architecture implies.")


if __name__ == "__main__":
    main()
