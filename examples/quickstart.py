#!/usr/bin/env python3
"""Quickstart: the paper's Figure 5 "Hello, world" PAL, end to end.

Builds a minimal PAL (no optional modules — the TCB is the <250-line SLB
Core alone), runs it in a Flicker session on the simulated platform, then
attests the session to a remote verifier and prints the Figure 2 timeline.

Run:  python examples/quickstart.py
"""

from repro import FlickerPlatform, PAL


class HelloPAL(PAL):
    """Figure 5: ignores its inputs and outputs 'Hello, world'."""

    name = "hello-world"
    modules = ()  # SLB Core only

    def run(self, ctx):
        ctx.write_output(b"Hello, world")


def main() -> None:
    platform = FlickerPlatform()

    # --- run a session ----------------------------------------------------
    nonce = b"\x42" * 20  # the verifier's challenge
    result = platform.execute_pal(HelloPAL(), inputs=b"ignored", nonce=nonce)
    print(f"PAL output: {result.outputs.decode()!r}")

    print("\nFigure 2 timeline (virtual milliseconds):")
    for phase in ("init-slb", "suspend-os", "skinit", "slb-init", "pal-exec",
                  "cleanup", "extend-pcr", "resume-os", "restore-os"):
        print(f"  {phase:<12} {result.phase_ms.get(phase, 0.0):8.3f} ms")
    print(f"  {'TOTAL':<12} {result.total_ms:8.3f} ms")

    print("\nPCR-17 event log:")
    for label, measurement in result.event_log:
        print(f"  {label:<12} {measurement.hex()}")

    # --- attest it to a remote verifier ------------------------------------
    attestation = platform.attest(nonce, result)
    report = platform.verifier().verify(attestation, result.image, nonce)
    print(f"\nremote verification: {'PASSED' if report.ok else 'FAILED'}")
    assert report.ok, report.failures

    # --- show that tampering is caught --------------------------------------
    from dataclasses import replace

    forged = replace(attestation, outputs=b"Hello, mallory")
    bad = platform.verifier().verify(forged, result.image, nonce)
    print(f"forged-output verification: {'PASSED' if bad.ok else 'REJECTED'}")
    assert not bad.ok

    print("\nSLB image stats:")
    image = result.image
    print(f"  linked modules:   {', '.join(image.linked_modules)}")
    print(f"  measured length:  {image.measured_length} bytes "
          f"({'optimized stub' if image.optimized else 'full code'})")
    print(f"  PCR-17 at launch: {image.pcr17_launch_value.hex()}")


if __name__ == "__main__":
    main()
